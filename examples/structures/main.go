// Distributed data structures from immutable tuples — the paper's §1
// claim that "a mutable distributed data structure can be built out of
// collections of immutable atomic objects", demonstrated three ways:
//
//   - a counting semaphore: N permit tuples; acquire = Take, release =
//     Insert (take's atomicity makes double-grants impossible);
//   - a FIFO queue with explicit head/tail index tuples updated by
//     take-then-insert (the tuple-space idiom for read-modify-write);
//   - a reusable barrier: arrivals insert tokens, the releaser takes
//     exactly n of them and inserts a generation tuple everyone reads.
//
// Each structure is exercised concurrently from several machines and
// checked for its defining invariant.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"paso"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	space, err := paso.New(paso.Options{
		Machines:   4,
		Lambda:     1,
		TupleNames: []string{"permit", "qhead", "qtail", "qitem", "arrive", "gen"},
	})
	if err != nil {
		return err
	}
	defer space.Close()

	if err := semaphoreDemo(space); err != nil {
		return fmt.Errorf("semaphore: %w", err)
	}
	if err := queueDemo(space); err != nil {
		return fmt.Errorf("queue: %w", err)
	}
	if err := barrierDemo(space); err != nil {
		return fmt.Errorf("barrier: %w", err)
	}
	return nil
}

// --- counting semaphore ---

func semaphoreDemo(space *paso.Space) error {
	const permits = 3
	for i := 0; i < permits; i++ {
		if _, err := space.On(1).Insert(paso.Str("permit")); err != nil {
			return err
		}
	}
	permitTpl := paso.MatchName("permit")

	var inCritical atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			h := space.On(worker%4 + 1)
			// acquire
			if _, err := h.TakeWait(permitTpl, 10*time.Second); err != nil {
				log.Println("acquire:", err)
				return
			}
			n := inCritical.Add(1)
			for {
				old := maxSeen.Load()
				if n <= old || maxSeen.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond) // critical section
			inCritical.Add(-1)
			// release
			if _, err := h.Insert(paso.Str("permit")); err != nil {
				log.Println("release:", err)
			}
		}(worker)
	}
	wg.Wait()
	fmt.Printf("semaphore: 8 workers through %d permits; max concurrent = %d (invariant ≤ %d: %v)\n",
		permits, maxSeen.Load(), permits, maxSeen.Load() <= permits)
	if maxSeen.Load() > permits {
		return fmt.Errorf("semaphore over-admitted")
	}
	return nil
}

// --- FIFO queue with index tuples ---

// enqueue: atomically bump the tail index (take qtail, insert qtail+1)
// and insert the item at the old slot.
func enqueue(h *paso.Handle, v int64) error {
	t, err := h.TakeWait(paso.MatchName("qtail", paso.AnyInt()), 10*time.Second)
	if err != nil {
		return err
	}
	slot := t.Field(1).MustInt()
	if _, err := h.Insert(paso.Str("qtail"), paso.I(slot+1)); err != nil {
		return err
	}
	_, err = h.Insert(paso.Str("qitem"), paso.I(slot), paso.I(v))
	return err
}

// dequeue: bump the head index and take the item at the old slot (waiting
// for a slow enqueuer to fill it if needed).
func dequeue(h *paso.Handle) (int64, error) {
	hd, err := h.TakeWait(paso.MatchName("qhead", paso.AnyInt()), 10*time.Second)
	if err != nil {
		return 0, err
	}
	slot := hd.Field(1).MustInt()
	if _, err := h.Insert(paso.Str("qhead"), paso.I(slot+1)); err != nil {
		return 0, err
	}
	item, err := h.TakeWait(paso.MatchName("qitem", paso.Eq(paso.I(slot)), paso.AnyInt()), 10*time.Second)
	if err != nil {
		return 0, err
	}
	return item.Field(2).MustInt(), nil
}

func queueDemo(space *paso.Space) error {
	if _, err := space.On(1).Insert(paso.Str("qhead"), paso.I(0)); err != nil {
		return err
	}
	if _, err := space.On(1).Insert(paso.Str("qtail"), paso.I(0)); err != nil {
		return err
	}
	const items = 24
	var wg sync.WaitGroup
	// Two producers on machines 1 and 2.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := space.On(p + 1)
			for i := 0; i < items/2; i++ {
				if err := enqueue(h, int64(p*1000+i)); err != nil {
					log.Println("enqueue:", err)
					return
				}
			}
		}(p)
	}
	// Two consumers on machines 3 and 4.
	var mu sync.Mutex
	var consumed []int64
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := space.On(c + 3)
			for i := 0; i < items/2; i++ {
				v, err := dequeue(h)
				if err != nil {
					log.Println("dequeue:", err)
					return
				}
				mu.Lock()
				consumed = append(consumed, v)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	seen := make(map[int64]bool, len(consumed))
	for _, v := range consumed {
		if seen[v] {
			return fmt.Errorf("item %d dequeued twice", v)
		}
		seen[v] = true
	}
	fmt.Printf("queue: %d items through 2 producers × 2 consumers, no loss, no duplication\n", len(consumed))
	if len(consumed) != items {
		return fmt.Errorf("consumed %d of %d", len(consumed), items)
	}
	return nil
}

// --- reusable barrier ---

func barrierDemo(space *paso.Space) error {
	const (
		parties = 4
		rounds  = 3
	)
	// Generation 0 exists so everyone can wait for generation g+1.
	if _, err := space.On(1).Insert(paso.Str("gen"), paso.I(0)); err != nil {
		return err
	}
	var wg sync.WaitGroup
	var order sync.Map // round → arrival count when each party passed
	for party := 0; party < parties; party++ {
		wg.Add(1)
		go func(party int) {
			defer wg.Done()
			h := space.On(party%4 + 1)
			for round := 0; round < rounds; round++ {
				// Arrive.
				if _, err := h.Insert(paso.Str("arrive"), paso.I(int64(round))); err != nil {
					log.Println("arrive:", err)
					return
				}
				// Party 0 releases: take all arrivals of this round, then
				// publish the next generation.
				if party == 0 {
					for i := 0; i < parties; i++ {
						if _, err := h.TakeWait(paso.MatchName("arrive", paso.Eq(paso.I(int64(round)))), 10*time.Second); err != nil {
							log.Println("collect:", err)
							return
						}
					}
					if _, err := h.Insert(paso.Str("gen"), paso.I(int64(round+1))); err != nil {
						log.Println("release:", err)
						return
					}
				}
				// Everyone waits for the new generation.
				if _, err := h.ReadWait(paso.MatchName("gen", paso.Eq(paso.I(int64(round+1)))), 10*time.Second); err != nil {
					log.Println("wait:", err)
					return
				}
				key := fmt.Sprintf("r%d-p%d", round, party)
				order.Store(key, round)
			}
		}(party)
	}
	wg.Wait()
	passed := 0
	order.Range(func(_, _ any) bool { passed++; return true })
	fmt.Printf("barrier: %d parties × %d rounds, %d passages (want %d)\n",
		parties, rounds, passed, parties*rounds)
	if passed != parties*rounds {
		return fmt.Errorf("barrier lost passages")
	}
	return nil
}
