package vsync

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"paso/internal/cost"
	"paso/internal/obs"
	"paso/internal/simnet"
	"paso/internal/transport"
)

// traceHarness is the vsync harness with one real obs.Obs per node so each
// node's span store can be inspected, mirroring how every machine records
// its own part of a distributed trace.
type traceHarness struct {
	t   *testing.T
	net *simnet.Net
	nds map[transport.NodeID]*Node
	hs  map[transport.NodeID]*testHandler
	os  map[transport.NodeID]*obs.Obs
}

func newTraceHarness(t *testing.T, ids ...transport.NodeID) *traceHarness {
	t.Helper()
	h := &traceHarness{
		t:   t,
		net: simnet.New(cost.DefaultModel()),
		nds: make(map[transport.NodeID]*Node),
		hs:  make(map[transport.NodeID]*testHandler),
		os:  make(map[transport.NodeID]*obs.Obs),
	}
	for _, id := range ids {
		ep, err := h.net.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		th := newTestHandler()
		o := obs.New(obs.Options{SpanCap: 4096})
		h.nds[id] = NewNodeWith(ep, th, o)
		h.hs[id] = th
		h.os[id] = o
	}
	t.Cleanup(func() {
		for _, nd := range h.nds {
			nd.Close()
		}
	})
	return h
}

func (h *traceHarness) crash(id transport.NodeID) {
	h.t.Helper()
	h.net.Crash(id)
	h.nds[id].Close()
	delete(h.nds, id)
	delete(h.hs, id)
	// h.os[id] is deleted too: a crashed machine's spans are lost, exactly
	// what the collector's gap annotation must surface.
	delete(h.os, id)
}

// collect gathers every span recorded anywhere in the (surviving) cluster.
func (h *traceHarness) collect() []obs.Span {
	var out []obs.Span
	for _, o := range h.os {
		out = append(out, o.Spans().Spans()...)
	}
	return out
}

// tracedGcastOn issues one traced gcast from the node, recording a root
// span the way a core primitive would, and returns the trace ID. It takes
// the node and sink directly so senders racing a harness crash() (which
// mutates the harness maps) hold their own references.
func tracedGcastOn(o *obs.Obs, nd *Node, machine uint64, group string, payload []byte) (uint64, Result, error) {
	trace := obs.NextID()
	o.Spans().Record(obs.Span{
		Trace: trace, ID: trace, Machine: machine, Name: "op.test",
	})
	res, err := nd.GcastTraced(group, payload, trace, trace)
	return trace, res, err
}

func (h *traceHarness) tracedGcast(id transport.NodeID, group string, payload []byte) (uint64, Result, error) {
	return tracedGcastOn(h.os[id], h.nds[id], uint64(id), group, payload)
}

// TestTraceSurvivesBatchCoalescing floods the group from three concurrent
// senders so the outbox coalesces tOrdered fan-out into tBatch frames, then
// asserts every trace still assembles completely: the trace header must
// survive envelope coalescing byte-for-byte.
func TestTraceSurvivesBatchCoalescing(t *testing.T) {
	h := newTraceHarness(t, 1, 2, 3)
	for id := transport.NodeID(1); id <= 3; id++ {
		if err := h.nds[id].Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	const perSender = 40
	traces := make(chan uint64, 3*perSender)
	var wg sync.WaitGroup
	for id := transport.NodeID(1); id <= 3; id++ {
		wg.Add(1)
		go func(id transport.NodeID) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				trace, res, err := h.tracedGcast(id, "g", []byte(fmt.Sprintf("p%d-%02d", id, i)))
				if err != nil || res.Fail {
					t.Errorf("gcast from %d: %v %+v", id, err, res)
					return
				}
				traces <- trace
			}
		}(id)
	}
	wg.Wait()
	close(traces)

	var batched int64
	for _, o := range h.os {
		batched += o.Counter("vsync.batch.msgs").Value()
	}
	if batched == 0 {
		t.Fatal("no tBatch coalescing happened; the test did not exercise the batching path")
	}

	spans := h.collect()
	model := cost.DefaultModel()
	n := 0
	for trace := range traces {
		n++
		asm := obs.Assemble(trace, spans, model)
		if !asm.Complete() {
			t.Fatalf("trace %016x incomplete: gaps=%+v spans=%d", trace, asm.Gaps, len(asm.Spans))
		}
		var gcasts, orders, delivers int
		for _, s := range asm.Spans {
			switch s.Name {
			case "gcast":
				gcasts++
				if s.GroupSize != 3 {
					t.Fatalf("trace %016x: gcast GroupSize = %d, want 3", trace, s.GroupSize)
				}
			case "order":
				orders++
			case "deliver":
				delivers++
			}
		}
		if gcasts != 1 || orders != 1 || delivers != 3 {
			t.Fatalf("trace %016x: gcast/order/deliver = %d/%d/%d, want 1/1/3",
				trace, gcasts, orders, delivers)
		}
	}
	if n != 3*perSender {
		t.Fatalf("resolved %d traces, want %d", n, 3*perSender)
	}
}

// TestTraceAcrossViewChange runs traced gcasts from a non-member while the
// group's membership changes underneath (a third member joins mid-stream):
// every trace must assemble with delivers matching the group size its cast
// was ordered against.
func TestTraceAcrossViewChange(t *testing.T) {
	h := newTraceHarness(t, 1, 2, 3)
	for _, id := range []transport.NodeID{1, 2} {
		if err := h.nds[id].Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	var traces []uint64
	cast := func(i int) {
		trace, res, err := h.tracedGcast(3, "g", []byte(fmt.Sprintf("m%02d", i)))
		if err != nil || res.Fail {
			t.Fatalf("gcast %d: %v %+v", i, err, res)
		}
		traces = append(traces, trace)
	}
	for i := 0; i < 20; i++ {
		cast(i)
	}
	if err := h.nds[3].Join("g"); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		cast(i)
	}

	spans := h.collect()
	model := cost.DefaultModel()
	for i, trace := range traces {
		asm := obs.Assemble(trace, spans, model)
		if !asm.Complete() {
			t.Fatalf("trace %d (%016x) incomplete: gaps=%+v", i, trace, asm.Gaps)
		}
		if len(asm.Hops) != 1 {
			t.Fatalf("trace %d: %d hops, want 1", i, len(asm.Hops))
		}
		want := 2
		if i >= 20 {
			want = 3
		}
		if asm.Hops[0].GroupSize != want {
			t.Fatalf("trace %d: |g| = %d, want %d", i, asm.Hops[0].GroupSize, want)
		}
	}
}

// TestTraceSurvivesCoordinatorFailover crashes the coordinator while traced
// gcasts are in flight. Requests retransmitted to the successor must keep
// their trace (the span carries a "retransmit" note), and any ordering
// state lost with the coordinator must surface as an explicit gap in the
// assembled trace, never as a silently complete one.
func TestTraceSurvivesCoordinatorFailover(t *testing.T) {
	h := newTraceHarness(t, 1, 2, 3)
	for _, id := range []transport.NodeID{2, 3} {
		if err := h.nds[id].Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	type done struct {
		trace uint64
		res   Result
		err   error
	}
	results := make(chan done, 60)
	sender, senderObs := h.nds[2], h.os[2]
	// The sender signals after its fifth completed cast so the crash lands
	// with 55 casts still to come — polling delivery counts instead loses
	// the race on a loaded machine: the compact codec resolves the whole
	// burst faster than a starved poll loop gets rescheduled.
	crashNow := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if i == 5 {
				close(crashNow)
			}
			trace, res, err := tracedGcastOn(senderObs, sender, 2, "g", []byte(fmt.Sprintf("m%02d", i)))
			results <- done{trace, res, err}
			// Keep a gap between casts so the concurrent crash can land
			// between round trips, not only inside one.
			time.Sleep(100 * time.Microsecond)
		}
	}()
	<-crashNow
	h.crash(1) // node 1 is the coordinator (lowest ID)
	wg.Wait()
	close(results)

	spans := h.collect()
	model := cost.DefaultModel()
	resolved, retransmitted := 0, 0
	for d := range results {
		if d.err != nil || d.res.Fail {
			continue // casts racing the crash may fail; the survivors matter here
		}
		resolved++
		asm := obs.Assemble(d.trace, spans, model)
		var gcast *obs.Span
		orderOK := false
		for i := range asm.Spans {
			s := &asm.Spans[i]
			switch s.Name {
			case "gcast":
				gcast = s
				if s.Note == "retransmit" {
					retransmitted++
				}
			case "order":
				orderOK = true
			}
		}
		if gcast == nil {
			t.Fatalf("trace %016x: resolved cast has no gcast span", d.trace)
		}
		if !orderOK {
			// The only ordering record was on the crashed coordinator: the
			// collector must say so explicitly.
			found := false
			for _, g := range asm.Gaps {
				if g.Parent == gcast.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("trace %016x: order span missing but no gap annotated", d.trace)
			}
		}
	}
	if resolved == 0 {
		t.Fatal("no casts resolved across the failover")
	}
	if retransmitted == 0 {
		t.Fatal("no cast was marked retransmitted; the failover path was not traced")
	}
	// The survivors must agree on the delivered sequence despite the
	// retransmissions (trace fields must not break dedup).
	l2, l3 := h.hs[2].log("g"), h.hs[3].log("g")
	for i := range l2 {
		if i < len(l3) && l2[i] != l3[i] {
			t.Fatalf("divergent logs at %d: %q vs %q", i, l2[i], l3[i])
		}
	}
}
