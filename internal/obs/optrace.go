package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"paso/internal/cost"
)

// OpTrace is the assembled cross-machine view of one operation: every span
// that shares the trace ID, reunited into a causal tree, with §3.3 cost
// attributed to each gcast hop and gaps (spans that should exist but were
// never collected — crashed members, dropped frames) called out explicitly
// rather than silently missing.
type OpTrace struct {
	// Trace is the operation's trace ID.
	Trace uint64 `json:"trace"`
	// Root is the primitive's entry span; zero-valued if it was lost.
	Root Span `json:"root"`
	// Spans holds all collected spans in causal order (parents before
	// children, siblings by start time).
	Spans []Span `json:"spans"`
	// Gaps lists places where the causal tree is provably incomplete.
	Gaps []Gap `json:"gaps,omitempty"`
	// Hops carries the per-gcast cost attribution.
	Hops []HopCost `json:"hops,omitempty"`
	// Measured sums the per-hop measured msg-cost.
	Measured float64 `json:"measured"`
	// Predicted sums the per-hop Figure-1 approximations.
	Predicted float64 `json:"predicted"`
	// Saved sums the per-hop ordering cost avoided by leased reads.
	Saved float64 `json:"saved,omitempty"`
}

// Gap marks a span (or set of spans) the causal tree expected but the
// collector never received. Expected counts come from the ordering layer's
// own record of |g|, so a member that crashed before recording its deliver
// span shows up as Expected > Got instead of vanishing.
type Gap struct {
	// Parent is the span whose children are incomplete.
	Parent uint64 `json:"parent"`
	// Name is the parent span's name, for human-readable reports.
	Name string `json:"name"`
	// Expected is how many child spans the protocol implies.
	Expected int `json:"expected"`
	// Got is how many were collected.
	Got int `json:"got"`
	// Note explains the most likely cause.
	Note string `json:"note"`
}

// HopCost attributes §3.3 cost to one gcast hop. Measured is rebuilt from
// the spans actually collected — each deliver span contributes its payload
// send plus an empty ack, and the reply contributes its response bytes —
// so it equals the exact §3.3 sum only when no spans are missing.
type HopCost struct {
	// Span is the gcast client span the hop belongs to.
	Span uint64 `json:"span"`
	// Group is the vsync group addressed.
	Group string `json:"group"`
	// GroupSize is |g| at ordering time.
	GroupSize int `json:"group_size"`
	// Bytes and RespBytes are the request/response payload sizes.
	Bytes     int `json:"bytes"`
	RespBytes int `json:"resp_bytes"`
	// Measured is Σ msg-cost over the collected constituent spans.
	Measured float64 `json:"measured"`
	// Predicted is the Figure-1 approximation |g|(2α + β(|msg|+|resp|));
	// for a lease-read hop it is the 2α + β(|sc|+|r|) direct-exchange cost.
	Predicted float64 `json:"predicted"`
	// Saved, non-zero only for lease-read hops, is the §3.3 cost of the
	// ordered gcast read this hop replaced minus the hop's own cost — the
	// per-read saving the "Leased reads" audit reports.
	Saved float64 `json:"saved,omitempty"`
}

// Assemble reunites the spans of one trace (collected from any number of
// machines, duplicates tolerated) into an OpTrace under the given cost
// model. Spans belonging to other traces are ignored.
func Assemble(trace uint64, spans []Span, model cost.Model) OpTrace {
	byID := make(map[uint64]Span)
	for _, s := range spans {
		if s.Trace == trace {
			byID[s.ID] = s
		}
	}
	t := OpTrace{Trace: trace}
	children := make(map[uint64][]Span)
	var roots []Span
	for _, s := range byID {
		if s.Parent == 0 || byID[s.Parent].ID == 0 && s.Parent != 0 {
			// Root, or orphan whose parent was lost: treat as a tree root
			// so it still renders.
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
		if s.Parent == 0 && (t.Root.ID == 0 || s.Start.Before(t.Root.Start)) {
			t.Root = s
		}
	}
	sortSpans(roots)
	for _, r := range roots {
		appendTree(&t.Spans, r, children)
	}

	// Gap detection and cost attribution walk the collected tree.
	for _, s := range t.Spans {
		switch s.Name {
		case "gcast":
			orders := childrenNamed(children, s.ID, "order")
			if len(orders) == 0 {
				t.Gaps = append(t.Gaps, Gap{
					Parent: s.ID, Name: s.Name, Expected: 1, Got: 0,
					Note: "no order span: coordinator crashed or span dropped",
				})
			}
			hop := HopCost{
				Span: s.ID, Group: s.Group, GroupSize: s.GroupSize,
				Bytes: s.Bytes, RespBytes: s.RespBytes,
				Predicted: model.GcastApprox(s.GroupSize, s.Bytes, s.RespBytes),
			}
			for _, o := range orders {
				for _, d := range childrenNamed(children, o.ID, "deliver") {
					// Each delivery is one payload send plus one empty ack.
					hop.Measured += model.Msg(d.Bytes) + model.Msg(0)
				}
			}
			// One gathered response back to the caller.
			hop.Measured += model.Msg(s.RespBytes)
			t.Hops = append(t.Hops, hop)
			t.Measured += hop.Measured
			t.Predicted += hop.Predicted
		case "lease-read":
			// A leased read is one direct request plus one direct response;
			// there are no deliver children to sum, so Measured rebuilds the
			// same two messages from the recorded sizes. Saved prices the
			// ordered gcast the lease made unnecessary.
			hop := HopCost{
				Span: s.ID, Group: s.Group, GroupSize: s.GroupSize,
				Bytes: s.Bytes, RespBytes: s.RespBytes,
				Measured:  model.Msg(s.Bytes) + model.Msg(s.RespBytes),
				Predicted: model.LeasedRead(s.Bytes, s.RespBytes),
				Saved:     model.LeasedReadSaving(s.GroupSize, s.Bytes, s.RespBytes),
			}
			t.Hops = append(t.Hops, hop)
			t.Measured += hop.Measured
			t.Predicted += hop.Predicted
			t.Saved += hop.Saved
		case "order":
			got := len(childrenNamed(children, s.ID, "deliver"))
			if s.GroupSize > 0 && got < s.GroupSize {
				t.Gaps = append(t.Gaps, Gap{
					Parent: s.ID, Name: s.Name, Expected: s.GroupSize, Got: got,
					Note: "missing deliver spans: member crashed or span dropped",
				})
			}
		}
	}
	return t
}

// Complete reports whether the trace has a root and no gaps.
func (t OpTrace) Complete() bool { return t.Root.ID != 0 && len(t.Gaps) == 0 }

// Render formats the trace as an indented text timeline with offsets
// relative to the root span's start, per-hop bytes, and §3.3 cost columns —
// the body of `pasoctl trace`.
func (t OpTrace) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %016x", t.Trace)
	if t.Root.ID != 0 {
		fmt.Fprintf(&sb, "  %s class=%s dur=%s", t.Root.Name, t.Root.Class, t.Root.Dur().Round(time.Microsecond))
	}
	sb.WriteByte('\n')
	base := t.Root.Start
	if base.IsZero() && len(t.Spans) > 0 {
		base = t.Spans[0].Start
	}
	depth := make(map[uint64]int)
	for _, s := range t.Spans {
		d := 0
		if s.Parent != 0 {
			d = depth[s.Parent] + 1
		}
		depth[s.ID] = d
		fmt.Fprintf(&sb, "%8s  %s%-10s m%d", offsetStr(s.Start, base), strings.Repeat("  ", d), s.Name, s.Machine)
		if s.Group != "" {
			fmt.Fprintf(&sb, " %s", s.Group)
		}
		if s.GroupSize > 0 {
			fmt.Fprintf(&sb, " |g|=%d", s.GroupSize)
		}
		if s.Bytes > 0 || s.RespBytes > 0 {
			fmt.Fprintf(&sb, " bytes=%d/%d", s.Bytes, s.RespBytes)
		}
		if s.Fail {
			sb.WriteString(" FAIL")
		}
		if s.Note != "" {
			fmt.Fprintf(&sb, " [%s]", s.Note)
		}
		fmt.Fprintf(&sb, " (%s)", s.Dur().Round(time.Microsecond))
		sb.WriteByte('\n')
	}
	for _, h := range t.Hops {
		fmt.Fprintf(&sb, "  hop %s |g|=%d bytes=%d/%d: measured=%.0f predicted=%.0f",
			h.Group, h.GroupSize, h.Bytes, h.RespBytes, h.Measured, h.Predicted)
		if h.Saved > 0 {
			fmt.Fprintf(&sb, " saved=%.0f (leased; vs ordered read)", h.Saved)
		} else {
			sb.WriteString(" (Fig.1 |g|(2α+β(|m|+|r|)))")
		}
		sb.WriteByte('\n')
	}
	for _, g := range t.Gaps {
		fmt.Fprintf(&sb, "  GAP under %s %016x: expected %d, got %d — %s\n",
			g.Name, g.Parent, g.Expected, g.Got, g.Note)
	}
	if len(t.Hops) > 0 {
		fmt.Fprintf(&sb, "  total: measured=%.0f predicted=%.0f", t.Measured, t.Predicted)
		if t.Saved > 0 {
			fmt.Fprintf(&sb, " saved=%.0f", t.Saved)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func offsetStr(s, base time.Time) string {
	if base.IsZero() || s.IsZero() {
		return "?"
	}
	return fmt.Sprintf("+%s", s.Sub(base).Round(time.Microsecond))
}

func childrenNamed(children map[uint64][]Span, parent uint64, name string) []Span {
	var out []Span
	for _, c := range children[parent] {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

func appendTree(out *[]Span, s Span, children map[uint64][]Span) {
	*out = append(*out, s)
	kids := children[s.ID]
	sortSpans(kids)
	for _, k := range kids {
		appendTree(out, k, children)
	}
}

func sortSpans(ss []Span) {
	sort.Slice(ss, func(i, j int) bool {
		if !ss[i].Start.Equal(ss[j].Start) {
			return ss[i].Start.Before(ss[j].Start)
		}
		return ss[i].ID < ss[j].ID
	})
}
