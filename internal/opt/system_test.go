package opt_test

import (
	"math/rand"
	"testing"

	"paso/internal/adaptive"
	"paso/internal/opt"
)

func systemTrace(n, events int, readFrac float64, hot int, seed int64) []opt.SystemEvent {
	r := rand.New(rand.NewSource(seed))
	out := make([]opt.SystemEvent, events)
	for i := range out {
		if r.Float64() < readFrac {
			m := r.Intn(n)
			if hot >= 0 && r.Float64() < 0.7 {
				m = hot
			}
			out[i] = opt.SystemEvent{Kind: opt.Read, Machine: m}
		} else {
			out[i] = opt.SystemEvent{Kind: opt.Update}
		}
	}
	return out
}

func TestRunSystemValidation(t *testing.T) {
	if _, err := opt.RunSystem(0, 1, 4, 1, nil, nil); err == nil {
		t.Error("n=0 accepted")
	}
	bad := []opt.SystemEvent{{Kind: opt.Read, Machine: 99}}
	if _, err := opt.RunSystem(2, 1, 4, 1, bad, func() adaptive.Policy {
		p, _ := adaptive.NewBasic(4)
		return p
	}); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestSystemBoundHoldsGlobally(t *testing.T) {
	// The Theorem 2 bound, summed over machines: total online ≤
	// (3+λ/K)·total OPT + n·B. The shared basic-support cost appears on
	// both sides, so it only tightens the measured ratio.
	for _, lambda := range []int{1, 2} {
		for _, k := range []int{4, 16} {
			bound := 3 + float64(lambda)/float64(k)
			for seed := int64(0); seed < 3; seed++ {
				n := 6
				trace := systemTrace(n, 8000, 0.6, int(seed%2)*3, seed)
				res, err := opt.RunSystem(n, lambda, k, 1, trace, func() adaptive.Policy {
					p, _ := adaptive.NewBasic(k)
					return p
				})
				if err != nil {
					t.Fatal(err)
				}
				slack := float64(2 * k * n)
				ratio := opt.Ratio(res.Cost, res.OptCost, slack)
				if ratio > bound+1e-9 {
					t.Errorf("λ=%d K=%d seed=%d: system ratio %.3f > %.3f (on=%v opt=%v)",
						lambda, k, seed, ratio, bound, res.Cost, res.OptCost)
				}
				// Each machine individually respects the bound too.
				for m, pair := range res.PerMachine {
					r := opt.Ratio(pair[0], pair[1], float64(2*k))
					if r > bound+1e-9 {
						t.Errorf("machine %d ratio %.3f > %.3f", m, r, bound)
					}
				}
			}
		}
	}
}

func TestSystemHotReaderConcentratesMembership(t *testing.T) {
	// With one hot reader, its machine's online cost should approach its
	// OPT (it joins once and reads locally), while cold machines stay out
	// and pay nothing for updates.
	n, lambda, k := 5, 1, 8
	trace := systemTrace(n, 6000, 0.8, 2, 9)
	res, err := opt.RunSystem(n, lambda, k, 1, trace, func() adaptive.Policy {
		p, _ := adaptive.NewBasic(k)
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := res.PerMachine[2]
	if hot[0] > 2*hot[1]+float64(4*k) {
		t.Errorf("hot machine online %v far above its opt %v", hot[0], hot[1])
	}
	for m, pair := range res.PerMachine {
		if m == 2 {
			continue
		}
		if pair[0] > 3.2*pair[1]+float64(4*k) {
			t.Errorf("cold machine %d online %v vs opt %v", m, pair[0], pair[1])
		}
	}
}
