package paso

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end to end — the examples
// self-check their invariants and exit non-zero on failure, so this keeps
// them from rotting as the library evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 6 {
		t.Fatalf("expected ≥ 6 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", e.Name()))
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example %s failed: %v", e.Name(), err)
				}
			case <-time.After(120 * time.Second):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s hung", e.Name())
			}
		})
	}
}
