package vsync

import (
	"reflect"
	"testing"
)

// FuzzWireRoundTrip throws arbitrary bytes at the frame decoder. The
// properties under test: decode never panics on any input, and any frame
// that decodes cleanly survives a re-encode/re-decode cycle unchanged
// (the codec is a bijection on its accepted set). Seeds cover every
// message type via sampleWires.
func FuzzWireRoundTrip(f *testing.F) {
	for _, w := range sampleWires() {
		f.Add(encodeWire(w))
	}
	f.Add([]byte{})
	f.Add([]byte{wireMagicV1})
	f.Fuzz(func(t *testing.T, b []byte) {
		var dec wireDecoder
		w, err := dec.decode(b)
		if err != nil {
			return // rejected input; only absence of panics is required
		}
		again, err := dec.decode(encodeWire(w))
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		normalizeWire(w)
		normalizeWire(again)
		if !reflect.DeepEqual(w, again) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", w, again)
		}
	})
}

// FuzzSnapshotRoundTrip is the same property for the state-transfer
// envelope, which has its own layout inside a tState payload.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(encodeSnapshot(&snapshotEnvelope{}))
	f.Add(encodeSnapshot(&snapshotEnvelope{
		App:       []byte{1, 2, 3},
		Delivered: map[uint64][]deliveredEntry{7: {{ReqID: 1, Resp: []byte{0xAA}, Fail: true}}},
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := decodeSnapshot(b)
		if err != nil {
			return
		}
		again, err := decodeSnapshot(encodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if len(s.App) == 0 && len(again.App) == 0 {
			s.App, again.App = nil, nil
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", s, again)
		}
	})
}
