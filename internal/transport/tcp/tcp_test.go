package tcp

import (
	"testing"
	"time"

	"paso/internal/transport"
)

func fastOpts() Options {
	return Options{
		HeartbeatInterval: 5 * time.Millisecond,
		FailTimeout:       30 * time.Millisecond,
	}
}

// mesh starts n endpoints fully connected on loopback.
func mesh(t *testing.T, n int) map[transport.NodeID]*Endpoint {
	t.Helper()
	eps := make(map[transport.NodeID]*Endpoint, n)
	for i := 1; i <= n; i++ {
		ep, err := Listen(transport.NodeID(i), "127.0.0.1:0", fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		eps[transport.NodeID(i)] = ep
	}
	for id, ep := range eps {
		for pid, pep := range eps {
			if pid != id {
				ep.AddPeer(pid, pep.Addr())
			}
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func waitItem(t *testing.T, ep *Endpoint, want func(transport.Item) bool, what string) transport.Item {
	t.Helper()
	timeout := time.After(10 * time.Second)
	for {
		select {
		case it, ok := <-ep.Recv():
			if !ok {
				t.Fatalf("stream closed waiting for %s", what)
			}
			if want(it) {
				return it
			}
		case <-timeout:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

func TestUpEventsViaHeartbeat(t *testing.T) {
	eps := mesh(t, 2)
	waitItem(t, eps[1], func(it transport.Item) bool {
		return it.Kind == transport.KindUp && it.From == 2
	}, "up(2)")
	waitItem(t, eps[2], func(it transport.Item) bool {
		return it.Kind == transport.KindUp && it.From == 1
	}, "up(1)")
}

func TestSendReceive(t *testing.T) {
	eps := mesh(t, 2)
	if err := eps[1].Send(2, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	it := waitItem(t, eps[2], func(it transport.Item) bool {
		return it.Kind == transport.KindMsg
	}, "message")
	if it.From != 1 || string(it.Payload) != "over tcp" {
		t.Fatalf("got %+v", it)
	}
}

func TestFIFOOrder(t *testing.T) {
	eps := mesh(t, 2)
	for i := byte(0); i < 100; i++ {
		if err := eps[1].Send(2, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 100; i++ {
		it := waitItem(t, eps[2], func(it transport.Item) bool {
			return it.Kind == transport.KindMsg
		}, "next frame")
		if it.Payload[0] != i {
			t.Fatalf("out of order: got %d want %d", it.Payload[0], i)
		}
	}
}

func TestLoopback(t *testing.T) {
	eps := mesh(t, 1)
	if err := eps[1].Send(1, []byte("self")); err != nil {
		t.Fatal(err)
	}
	it := waitItem(t, eps[1], func(it transport.Item) bool {
		return it.Kind == transport.KindMsg
	}, "loopback")
	if it.From != 1 || string(it.Payload) != "self" {
		t.Fatalf("got %+v", it)
	}
}

func TestUpPrecedesFirstMessage(t *testing.T) {
	eps := mesh(t, 2)
	if err := eps[1].Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	sawUp := false
	timeout := time.After(10 * time.Second)
	for {
		select {
		case it := <-eps[2].Recv():
			if it.From != 1 {
				continue
			}
			if it.Kind == transport.KindUp {
				sawUp = true
			}
			if it.Kind == transport.KindMsg {
				if !sawUp {
					t.Fatal("message from 1 arrived before up(1)")
				}
				return
			}
		case <-timeout:
			t.Fatal("message never arrived")
		}
	}
}

func TestDownDetection(t *testing.T) {
	eps := mesh(t, 3)
	waitItem(t, eps[1], func(it transport.Item) bool {
		return it.Kind == transport.KindUp && it.From == 3
	}, "up(3)")
	if err := eps[3].Close(); err != nil {
		t.Fatal(err)
	}
	waitItem(t, eps[1], func(it transport.Item) bool {
		return it.Kind == transport.KindDown && it.From == 3
	}, "down(3)")
	alive := eps[1].Alive()
	for _, id := range alive {
		if id == 3 {
			t.Fatalf("3 still in alive set %v", alive)
		}
	}
}

func TestSendAfterCloseErrors(t *testing.T) {
	ep, err := Listen(9, "127.0.0.1:0", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(9, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestLargeFrame(t *testing.T) {
	eps := mesh(t, 2)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := eps[1].Send(2, big); err != nil {
		t.Fatal(err)
	}
	it := waitItem(t, eps[2], func(it transport.Item) bool {
		return it.Kind == transport.KindMsg
	}, "large frame")
	if len(it.Payload) != len(big) || it.Payload[12345] != big[12345] {
		t.Fatal("large frame corrupted")
	}
}

func TestSendToUnknownPeerDrops(t *testing.T) {
	eps := mesh(t, 1)
	if err := eps[1].Send(42, []byte("void")); err != nil {
		t.Fatalf("send to unknown peer: %v", err)
	}
}
