package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"paso/internal/obs"
	"paso/internal/obs/flight"
)

// runTop implements the "top" subcommand: one scrape of every machine's
// debug endpoint rendered as a cluster-wide live view — per-machine load
// and stage latencies, then the per-group ownership map with backlog and
// ordering latency attributed to the current owner.
//
//	pasoctl top -debug 127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303
//	pasoctl top -debug ... -watch 2s
func runTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pasoctl top", flag.ContinueOnError)
	debug := fs.String("debug", "127.0.0.1:7301", "comma-separated debug addresses of the cluster's machines")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	watch := fs.Duration("watch", 0, "refresh period; 0 renders once and exits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitAddrs(*debug)
	if len(addrs) == 0 {
		return fmt.Errorf("top: -debug needs at least one address")
	}
	client := &http.Client{Timeout: *timeout}
	for {
		if err := topOnce(client, addrs, out); err != nil {
			return err
		}
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
		fmt.Fprintln(out)
	}
}

// topMachine is one machine's scraped state.
type topMachine struct {
	addr       string
	counters   map[string]int64
	gauges     map[string]int64
	histograms map[string]obs.HistSnapshot
	owners     map[string]flight.OwnershipEvent
}

func topOnce(client *http.Client, addrs []string, out io.Writer) error {
	var machines []topMachine
	for _, addr := range addrs {
		var metrics struct {
			Counters   map[string]int64            `json:"counters"`
			Gauges     map[string]int64            `json:"gauges"`
			Histograms map[string]obs.HistSnapshot `json:"histograms"`
		}
		if err := getJSON(client, "http://"+addr+"/metrics.json", &metrics); err != nil {
			fmt.Fprintf(out, "# %s unreachable: %v\n", addr, err)
			continue
		}
		m := topMachine{
			addr:       addr,
			counters:   metrics.Counters,
			gauges:     metrics.Gauges,
			histograms: metrics.Histograms,
		}
		// /placement is best-effort: a daemon without the flight plane still
		// renders, just without the ownership map.
		var placement struct {
			Owners map[string]flight.OwnershipEvent `json:"owners"`
		}
		if err := getJSON(client, "http://"+addr+"/placement", &placement); err == nil {
			m.owners = placement.Owners
		}
		machines = append(machines, m)
	}
	if len(machines) == 0 {
		return fmt.Errorf("top: no debug endpoint reachable")
	}

	fmt.Fprintf(out, "%-21s  %6s  %7s  %9s  %9s  %9s  %9s  %6s  %9s\n",
		"MACHINE", "GROUPS", "BACKLOG", "CLIENTQ99", "ORDER-P99", "DELIVER99", "GCAST-P99", "STALLS", "SENDQ-HWM")
	for _, m := range machines {
		fmt.Fprintf(out, "%-21s  %6d  %7d  %9s  %9s  %9s  %9s  %6d  %9d\n",
			m.addr,
			m.gauges["vsync.coord.groups"],
			m.gauges["vsync.coord.backlog"],
			fmtSecs(m.histograms[obs.StageClientQueue].P99),
			fmtSecs(m.histograms[obs.StageOrder].P99),
			fmtSecs(m.histograms[obs.StageDeliver].P99),
			fmtSecs(m.histograms["vsync.gcast.latency.seconds"].P99),
			m.counters["transport.send.stalls"],
			maxGauge(m.gauges, "transport.sendq.hwm.p"))
	}

	// Ownership map: merge every machine's audit view, keeping the newest
	// record per group, and attribute backlog and ordering latency from
	// whichever machine currently sequences the group.
	type groupRow struct {
		group string
		own   flight.OwnershipEvent
	}
	newest := make(map[string]flight.OwnershipEvent)
	for _, m := range machines {
		for g, e := range m.owners {
			if cur, ok := newest[g]; !ok || e.Time.After(cur.Time) {
				newest[g] = e
			}
		}
	}
	if len(newest) == 0 {
		fmt.Fprintln(out, "\nno ownership records (placed mode off, or no /placement endpoint)")
		return nil
	}
	rows := make([]groupRow, 0, len(newest))
	for g, e := range newest {
		rows = append(rows, groupRow{group: g, own: e})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].group < rows[j].group })
	fmt.Fprintf(out, "\n%-24s  %-6s  %5s  %-9s  %9s  %7s  %9s\n",
		"GROUP", "OWNER", "EPOCH", "KIND", "TAKEOVER", "BACKLOG", "ORDER-P99")
	for _, r := range rows {
		var backlog int64
		var orderP99 float64
		for _, m := range machines {
			if b, ok := m.gauges["vsync.coord.backlog."+r.group]; ok && b > backlog {
				backlog = b
			}
			if h, ok := m.histograms["vsync.order.seconds."+r.group]; ok && h.P99 > orderP99 {
				orderP99 = h.P99
			}
		}
		takeover := "-"
		if r.own.TakeoverSeconds > 0 {
			takeover = fmtSecs(r.own.TakeoverSeconds)
		}
		fmt.Fprintf(out, "%-24s  m%-5d  %5d  %-9s  %9s  %7d  %9s\n",
			r.group, r.own.Owner, r.own.Epoch, r.own.Kind, takeover, backlog, fmtSecs(orderP99))
	}
	return nil
}

// fmtSecs renders a latency in seconds at ms/µs-friendly precision.
func fmtSecs(s float64) string {
	if s <= 0 {
		return "-"
	}
	d := time.Duration(s * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// maxGauge returns the largest gauge value whose name carries the prefix
// (the per-peer send-queue watermark family).
func maxGauge(gauges map[string]int64, prefix string) int64 {
	var max int64
	for name, v := range gauges {
		if strings.HasPrefix(name, prefix) && v > max {
			max = v
		}
	}
	return max
}
