package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTrajectoryAppend runs the loadgen twice against the same output file
// and verifies the trajectory accumulates points instead of overwriting.
func TestTrajectoryAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a real TCP cluster; skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_paso.json")
	args := []string{"-machines", "2", "-workers", "2", "-duration", "100ms", "-out", out, "-label", "test"}
	for i := 0; i < 2; i++ {
		if err := run(args); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// The writer disables HTML escaping: the per-op key must appear as
	// "read&del", never as the \u0026 escape.
	if !bytes.Contains(raw, []byte("read&del")) {
		t.Error(`trajectory file lacks literal "read&del" (HTML escaping on?)`)
	}
	if bytes.Contains(raw, []byte(`\u0026`)) {
		t.Error(`trajectory file contains \u0026 escapes`)
	}
	var tr trajectory
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != "paso-bench-trajectory/v1" {
		t.Fatalf("schema = %q", tr.Schema)
	}
	if len(tr.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(tr.Points))
	}
	for _, p := range tr.Points {
		if p.Label != "test" || p.Ops <= 0 || p.OpsPerSec <= 0 {
			t.Fatalf("bad point: %+v", p)
		}
	}
}

func TestBadFlagErrors(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestSweepTrajectoryAppend runs a tiny open-loop sweep on simnet (the CI
// smoke path) and verifies the appended point has kind "sweep", carries
// the curve, and that the JSON writer leaves "read&del" unescaped.
func TestSweepTrajectoryAppend(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung load run; skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_paso.json")
	args := []string{"-machines", "2", "-workers", "4", "-transport", "simnet",
		"-sweep", "200,400", "-rung", "100ms", "-sweep-min-achieved", "0.5",
		"-out", out, "-label", "sweep-test"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tr trajectory
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(tr.Points))
	}
	p := tr.Points[0]
	if p.Kind != "sweep" || p.Sweep == nil {
		t.Fatalf("point kind = %q, sweep = %v", p.Kind, p.Sweep)
	}
	if p.ThroughputResult != nil {
		t.Error("sweep point carries throughput fields")
	}
	if len(p.Sweep.Rungs) != 2 {
		t.Fatalf("rungs = %d, want 2", len(p.Sweep.Rungs))
	}
	for i, rg := range p.Sweep.Rungs {
		if rg.Ops <= 0 || rg.P50Ms < 0 {
			t.Errorf("rung %d: %+v", i, rg)
		}
	}
}

// TestParseRates pins ladder validation.
func TestParseRates(t *testing.T) {
	if r, err := parseRates("", 500); err != nil || len(r) != 1 || r[0] != 500 {
		t.Errorf("single rate: %v %v", r, err)
	}
	if r, err := parseRates("100, 200,400", 0); err != nil || len(r) != 3 {
		t.Errorf("ladder: %v %v", r, err)
	}
	if _, err := parseRates("100,90", 0); err == nil {
		t.Error("non-increasing ladder accepted")
	}
	if _, err := parseRates("100,abc", 0); err == nil {
		t.Error("garbage rate accepted")
	}
}
