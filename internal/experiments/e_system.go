package experiments

import (
	"math/rand"

	"paso/internal/adaptive"
	"paso/internal/opt"
	"paso/internal/stats"
)

// E16SystemCompetitive lifts Theorem 2 from one machine to the whole
// ensemble: n adaptive machines share a class under a global trace, and
// the measured SYSTEM ratio (total work / sum of exact per-machine optima,
// including the λ+1 basic replicas' update share) is compared against the
// per-machine bound — which survives the summation, as the paper's
// per-machine potential argument implies.
func E16SystemCompetitive() *stats.Table {
	t := stats.NewTable("E16", "system-level total work vs sum of per-machine optima",
		"n", "lambda", "K", "trace", "online", "opt", "ratio", "bound")
	for _, n := range []int{4, 8} {
		for _, lambda := range []int{1, 2} {
			k := 8
			bound := 3 + float64(lambda)/float64(k)
			for _, tr := range []struct {
				name  string
				trace []opt.SystemEvent
			}{
				{"hot-reader", sysTrace(n, 8000, 0.75, 0, 51)},
				{"uniform", sysTrace(n, 8000, 0.6, -1, 52)},
				{"update-heavy", sysTrace(n, 8000, 0.2, -1, 53)},
			} {
				res, err := opt.RunSystem(n, lambda, k, 1, tr.trace, func() adaptive.Policy {
					p, perr := adaptive.NewBasic(k)
					if perr != nil {
						return adaptive.Static{}
					}
					return p
				})
				if err != nil {
					t.AddNote("%v", err)
					continue
				}
				ratio := opt.Ratio(res.Cost, res.OptCost, float64(2*k*n))
				t.AddRow(stats.D(n), stats.D(lambda), stats.D(k), tr.name,
					stats.F(res.Cost), stats.F(res.OptCost),
					stats.F(ratio), stats.F(bound))
			}
		}
	}
	t.AddNote("opt includes the basic replicas' unavoidable update share, common to both sides")
	return t
}

// sysTrace builds a global trace; hot ≥ 0 concentrates 70% of reads on
// that machine.
func sysTrace(n, events int, readFrac float64, hot int, seed int64) []opt.SystemEvent {
	r := rand.New(rand.NewSource(seed))
	out := make([]opt.SystemEvent, events)
	for i := range out {
		if r.Float64() < readFrac {
			m := r.Intn(n)
			if hot >= 0 && r.Float64() < 0.7 {
				m = hot
			}
			out[i] = opt.SystemEvent{Kind: opt.Read, Machine: m}
		} else {
			out[i] = opt.SystemEvent{Kind: opt.Update}
		}
	}
	return out
}
