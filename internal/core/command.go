// Package core implements the PASO memory engine on top of the
// virtual-synchrony layer: write groups and read groups per object class
// (paper §4.1), the memory-server command handlers (§4.2), and the macro
// expansions of the insert, read, and read&del primitives (§4.3 and
// Appendix A), including the blocking variants (busy-wait, read markers,
// and the hybrid of both).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"paso/internal/class"
	"paso/internal/tuple"
)

// cmdKind discriminates memory-server commands carried in gcasts.
type cmdKind uint8

const (
	cmdStore  cmdKind = iota + 1 // store(o): insert an object
	cmdRead                      // mem-read(sc, C): return a match or fail
	cmdRemove                    // remove(sc, C): delete + return oldest match
	cmdMark                      // place a read marker for a blocked read
	cmdSwap                      // atomic remove(sc)+store(o) (tuple swap)
)

// command is a decoded memory-server command.
type command struct {
	kind  cmdKind
	class class.ID
	obj   tuple.Tuple    // cmdStore / cmdSwap (the replacement)
	tpl   tuple.Template // cmdRead / cmdRemove / cmdMark / cmdSwap
}

// errBadCommand reports an undecodable command payload.
var errBadCommand = errors.New("core: bad command encoding")

// encodeCommand serializes a command: kind, class, then the object or
// template. Sizes feed the α+β cost model, so the encoding is the same
// compact binary as the tuple codec.
func encodeCommand(c *command) []byte {
	var body []byte
	switch c.kind {
	case cmdStore:
		body = tuple.EncodeTuple(c.obj)
	case cmdRead, cmdRemove, cmdMark:
		body = tuple.EncodeTemplate(c.tpl)
	case cmdSwap:
		tpl := tuple.EncodeTemplate(c.tpl)
		body = binary.LittleEndian.AppendUint32(nil, uint32(len(tpl)))
		body = append(body, tpl...)
		body = append(body, tuple.EncodeTuple(c.obj)...)
	}
	cls := []byte(c.class)
	out := make([]byte, 0, 1+2+len(cls)+len(body))
	out = append(out, byte(c.kind))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(cls)))
	out = append(out, cls...)
	out = append(out, body...)
	return out
}

// decodeCommand parses a command payload, copying string data out of b.
func decodeCommand(b []byte) (*command, error) {
	c := &command{}
	if err := c.decode(b, false); err != nil {
		return nil, err
	}
	return c, nil
}

// decode parses a command payload into c. With alias set, the class and
// every string/bytes field of the object or template reference b directly
// instead of copying: the delivery path uses this on transport receive
// frames, which are immutable and never reused, so a stored tuple's
// payload keeps aliasing the frame the socket produced (zero copies
// between socket and store; see DESIGN.md, "Delivery buffer ownership").
func (c *command) decode(b []byte, alias bool) error {
	if len(b) < 3 {
		return errBadCommand
	}
	c.kind = cmdKind(b[0])
	n := int(binary.LittleEndian.Uint16(b[1:3]))
	if len(b) < 3+n {
		return errBadCommand
	}
	if alias && n > 0 {
		c.class = class.ID(unsafe.String(&b[3], n))
	} else {
		c.class = class.ID(b[3 : 3+n])
	}
	body := b[3+n:]
	decTuple, decTpl := tuple.DecodeTuple, tuple.DecodeTemplate
	if alias {
		decTuple, decTpl = tuple.DecodeTupleAlias, tuple.DecodeTemplateAlias
	}
	var err error
	switch c.kind {
	case cmdStore:
		c.obj, err = decTuple(body)
	case cmdRead, cmdRemove, cmdMark:
		c.tpl, err = decTpl(body)
	case cmdSwap:
		if len(body) < 4 {
			return errBadCommand
		}
		tlen := int(binary.LittleEndian.Uint32(body))
		if len(body) < 4+tlen {
			return errBadCommand
		}
		c.tpl, err = decTpl(body[4 : 4+tlen])
		if err == nil {
			c.obj, err = decTuple(body[4+tlen:])
		}
	default:
		return fmt.Errorf("%w: kind %d", errBadCommand, b[0])
	}
	if err != nil {
		return fmt.Errorf("%w: %v", errBadCommand, err)
	}
	return nil
}

// response is a memory server's answer to a command.
type response struct {
	ok     bool
	probes uint32 // data-structure probes spent (work accounting)
	obj    tuple.Tuple
}

// encodeResponse serializes a response.
func encodeResponse(r *response) []byte {
	out := make([]byte, 0, 5+64)
	if r.ok {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint32(out, r.probes)
	if r.ok {
		out = append(out, tuple.EncodeTuple(r.obj)...)
	}
	return out
}

// decodeResponse parses a response payload.
func decodeResponse(b []byte) (*response, error) {
	if len(b) < 5 {
		return nil, errBadCommand
	}
	r := &response{ok: b[0] == 1, probes: binary.LittleEndian.Uint32(b[1:5])}
	if r.ok {
		obj, err := tuple.DecodeTuple(b[5:])
		if err != nil {
			return nil, fmt.Errorf("decode response: %w", err)
		}
		r.obj = obj
	}
	return r, nil
}

// wgName and rgName build the vsync group names for a class's write and
// read groups.
func wgName(cls class.ID) string { return "wg/" + string(cls) }
func rgName(cls class.ID) string { return "rg/" + string(cls) }

// parseGroup splits a group name into kind ("wg" or "rg") and class.
func parseGroup(group string) (kind string, cls class.ID, ok bool) {
	if len(group) < 4 || group[2] != '/' {
		return "", "", false
	}
	kind = group[:2]
	if kind != "wg" && kind != "rg" {
		return "", "", false
	}
	return kind, class.ID(group[3:]), true
}
