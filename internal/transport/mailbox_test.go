package transport

import (
	"testing"
	"time"
)

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	for i := 0; i < 100; i++ {
		m.Put(Item{Kind: KindMsg, From: NodeID(i)})
	}
	for i := 0; i < 100; i++ {
		it := <-m.Out()
		if it.From != NodeID(i) {
			t.Fatalf("got %d, want %d", it.From, i)
		}
	}
}

func TestMailboxPutNeverBlocks(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			m.Put(Item{Kind: KindMsg})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Put blocked with no consumer")
	}
	if m.Len() == 0 {
		t.Error("queue should hold items")
	}
}

func TestMailboxCloseClosesOut(t *testing.T) {
	m := NewMailbox()
	m.Put(Item{Kind: KindMsg})
	m.Close()
	// Drain: channel must be closed (possibly after delivering buffered
	// items that raced with Close).
	timeout := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-m.Out():
			if !ok {
				return
			}
		case <-timeout:
			t.Fatal("Out never closed")
		}
	}
}

func TestMailboxCloseIdempotent(t *testing.T) {
	m := NewMailbox()
	m.Close()
	m.Close() // must not panic or hang
	m.Put(Item{Kind: KindMsg})
	if m.Len() != 0 {
		t.Error("Put after Close enqueued")
	}
}

func TestMailboxCloseWithStuckConsumer(t *testing.T) {
	m := NewMailbox()
	m.Put(Item{Kind: KindMsg})
	m.Put(Item{Kind: KindMsg})
	// Nobody reads Out; the pump is blocked delivering item 1.
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with stuck consumer")
	}
}

func TestMailboxReleasesBackingArrayWhenDrained(t *testing.T) {
	m := NewMailbox()
	defer m.Close()
	const burst = 4096
	for i := 0; i < burst; i++ {
		m.Put(Item{Kind: KindMsg, From: NodeID(i), Payload: make([]byte, 1024)})
	}
	for i := 0; i < burst; i++ {
		<-m.Out()
	}
	// The pump blocks handing the last item to us before it re-checks the
	// queue, so poll until it has observed the drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.mu.Lock()
		released := m.queue == nil
		m.mu.Unlock()
		if released {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backing array still pinned after a full drain")
		}
		time.Sleep(time.Millisecond)
	}
	// The mailbox must keep working after the reset.
	m.Put(Item{Kind: KindMsg, From: 7})
	if it := <-m.Out(); it.From != 7 {
		t.Fatalf("post-drain delivery got %+v", it)
	}
}

func TestItemKindString(t *testing.T) {
	if KindMsg.String() != "msg" || KindUp.String() != "up" || KindDown.String() != "down" {
		t.Error("kind names wrong")
	}
	if ItemKind(0).String() != "invalid" {
		t.Error("zero kind should be invalid")
	}
}
