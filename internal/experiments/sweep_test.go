package experiments

import (
	"encoding/json"
	"testing"
	"time"

	"paso/internal/obs"
)

// TestRunSweepSimnet climbs a tiny two-rung ladder on the simulated LAN —
// the same path the CI sweep-smoke job takes — and checks the curve's
// shape: every rung measured, achieved rate positive, per-stage
// attribution present, and the result JSON round-trips.
func TestRunSweepSimnet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung load run; skipped in -short mode")
	}
	res, err := RunSweep(SweepConfig{
		Machines:     3,
		Workers:      8,
		Rates:        []float64{200, 400},
		RungDuration: 150 * time.Millisecond,
		Preload:      64,
		Transport:    "simnet",
		Obs:          obs.New(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rungs) != 2 {
		t.Fatalf("rungs = %d, want 2", len(res.Rungs))
	}
	for i, rg := range res.Rungs {
		if rg.Ops <= 0 || rg.Achieved <= 0 {
			t.Errorf("rung %d: ops=%d achieved=%.1f", i, rg.Ops, rg.Achieved)
		}
		if rg.Fails > 0 {
			t.Errorf("rung %d: %d failed ops", i, rg.Fails)
		}
		if len(rg.Stages) == 0 {
			t.Errorf("rung %d: no stage attribution", i)
		}
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Transport != "simnet" || len(back.Rungs) != 2 {
		t.Errorf("round-trip lost fields: %+v", back)
	}
	if res.Table().Render() == "" {
		t.Error("empty table render")
	}
}

// TestRunSweepRejectsBadTransport pins the error path.
func TestRunSweepRejectsBadTransport(t *testing.T) {
	if _, err := RunSweep(SweepConfig{Transport: "carrier-pigeon",
		Rates: []float64{100}, RungDuration: 10 * time.Millisecond}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// TestRunSweepMultiClass runs the E19 sharded mode on the simulated LAN:
// 8 classes over 3 machines with placed per-class coordinators. Checks
// that the Zipf-mixed workload completes failure-free and the class count
// survives the JSON round-trip (the BENCH trajectory relies on it).
func TestRunSweepMultiClass(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rung load run; skipped in -short mode")
	}
	res, err := RunSweep(SweepConfig{
		Machines:     3,
		Workers:      8,
		Classes:      8,
		Rates:        []float64{200, 400},
		RungDuration: 150 * time.Millisecond,
		Preload:      64,
		Transport:    "simnet",
		Obs:          obs.New(obs.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 8 {
		t.Fatalf("classes = %d, want 8", res.Classes)
	}
	for i, rg := range res.Rungs {
		if rg.Ops <= 0 {
			t.Errorf("rung %d: no ops", i)
		}
		if rg.Fails > 0 {
			t.Errorf("rung %d: %d failed ops", i, rg.Fails)
		}
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Classes != 8 {
		t.Errorf("round-trip lost classes: %+v", back)
	}
}
