package paso

import (
	"math/rand"
	"sync"
	"testing"

	"paso/internal/semantics"
)

// TestSemanticsUnderConcurrencyAndCrashes drives a live space from many
// goroutines — with a crash and restart in the middle — and validates the
// recorded history against the §2 semantics rules (A2, R1, R2).
func TestSemanticsUnderConcurrencyAndCrashes(t *testing.T) {
	s := newSpace(t, Options{Machines: 5, Lambda: 2, TupleNames: []string{"d"}})
	rec := semantics.NewRecorder()
	tpl := MatchName("d", AnyInt())

	var wg sync.WaitGroup
	worker := func(machine int, seed int64) {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 60; i++ {
			h := s.On(machine)
			if h == nil {
				continue // machine currently crashed
			}
			switch r.Intn(3) {
			case 0:
				start := rec.Begin()
				tup, err := h.Insert(Str("d"), I(r.Int63n(50)))
				rec.EndInsert(machine, start, tup, err)
			case 1:
				start := rec.Begin()
				tup, ok, err := h.Read(tpl)
				if err == nil {
					rec.EndRead(machine, start, tup, ok)
				}
			default:
				start := rec.Begin()
				tup, ok, err := h.Take(tpl)
				if err == nil {
					rec.EndReadDel(machine, start, tup, ok)
				}
			}
		}
	}
	for m := 1; m <= 5; m++ {
		wg.Add(1)
		go worker(m, int64(m))
	}
	// Crash machine 5 mid-run, then bring it back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Crash(5)
		if err := s.Restart(5); err != nil {
			t.Errorf("restart: %v", err)
		}
	}()
	wg.Wait()

	history := rec.History()
	if len(history) < 100 {
		t.Fatalf("history too small: %d records", len(history))
	}
	if violations := semantics.Check(history); len(violations) != 0 {
		for _, v := range violations {
			t.Errorf("semantics violation: %v", v)
		}
	}
}
