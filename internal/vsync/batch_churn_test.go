package vsync

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"paso/internal/cost"
	"paso/internal/obs"
	"paso/internal/simnet"
	"paso/internal/transport"
)

// TestPipelinedGcastCoordinatorCrash drives many pipelined gcasts (several
// concurrent issuers per node, so the coordinator's loop sees bursts and
// coalesces tOrdered/tAck traffic into tBatch frames) while the
// coordinator crashes mid-burst. Every gcast that reported success must
// appear in every surviving member's log exactly once, and the logs must
// agree — the §3.2 guarantees with batched delivery on the wire.
func TestPipelinedGcastCoordinatorCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test skipped in -short mode")
	}
	// Force the per-destination send workers on: single-CPU CI hosts
	// default to inline sends, and this test (with the race detector) is
	// where the worker handoff plumbing earns its coverage.
	t.Setenv("PASO_FANOUT", "1")
	const (
		nodes     = 5
		issuers   = 4  // concurrent gcast goroutines per node
		perIssuer = 20 // gcasts per goroutine
	)
	net := simnet.New(cost.DefaultModel())
	nds := make(map[transport.NodeID]*Node, nodes)
	hs := make(map[transport.NodeID]*testHandler, nodes)
	os := make(map[transport.NodeID]*obs.Obs, nodes)
	for id := transport.NodeID(1); id <= nodes; id++ {
		ep, err := net.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		th := newTestHandler()
		o := obs.New(obs.Options{})
		nds[id] = NewNodeWith(ep, th, o)
		hs[id] = th
		os[id] = o
	}
	t.Cleanup(func() {
		for _, nd := range nds {
			nd.Close()
		}
	})
	for id := transport.NodeID(1); id <= nodes; id++ {
		if err := nds[id].Join("g"); err != nil {
			t.Fatal(err)
		}
	}

	// Pipelined burst from every node; successes recorded per payload.
	var succeeded sync.Map // payload string → true
	var wg sync.WaitGroup
	for id := transport.NodeID(1); id <= nodes; id++ {
		for w := 0; w < issuers; w++ {
			wg.Add(1)
			go func(id transport.NodeID, nd *Node, w int) {
				defer wg.Done()
				for m := 0; m < perIssuer; m++ {
					payload := fmt.Sprintf("n%d-w%d-m%d", id, w, m)
					res, err := nd.Gcast("g", []byte(payload))
					// Errors and fails are tolerated only around the
					// crash window; successes must be delivered.
					if err == nil && !res.Fail {
						succeeded.Store(payload, true)
					}
				}
			}(id, nds[id], w)
		}
	}
	// Crash the coordinator (lowest live ID) mid-burst. The survivors'
	// recovery protocol must rebuild sequencing state and the retransmitted
	// requests must dedup, batched frames included.
	time.Sleep(2 * time.Millisecond)
	net.Crash(1)
	nds[1].Close()
	delete(nds, 1)
	delete(hs, 1)
	wg.Wait()

	// Quiesce and converge.
	var survivor *Node
	for _, nd := range nds {
		survivor = nd
		break
	}
	if _, err := survivor.Gcast("g", []byte("final")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "logs converge", func() bool {
		length := -1
		for id, nd := range nds {
			if !nd.Member("g") {
				continue
			}
			got := len(hs[id].log("g"))
			if length == -1 {
				length = got
				continue
			}
			if got != length {
				return false
			}
		}
		return true
	})

	// All member logs identical and duplicate-free.
	var ref []string
	var refID transport.NodeID
	for id, nd := range nds {
		if !nd.Member("g") {
			continue
		}
		got := hs[id].log("g")
		if ref == nil {
			ref, refID = got, id
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("log length mismatch: node %d has %d, node %d has %d",
				id, len(got), refID, len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order divergence at %d: node %d %q vs node %d %q",
					i, id, got[i], refID, ref[i])
			}
		}
	}
	seen := make(map[string]int, len(ref))
	for _, m := range ref {
		seen[m]++
		if seen[m] > 1 {
			t.Fatalf("duplicate delivery %q", m)
		}
	}
	// Exactly-once for every acknowledged gcast: a success means every
	// member acked the ordered event before the reply, so survivors must
	// hold it.
	succeeded.Range(func(k, _ any) bool {
		if seen[k.(string)] != 1 {
			t.Errorf("successful gcast %q delivered %d times", k, seen[k.(string)])
		}
		return true
	})

	// The pipelined load must actually have exercised the batch path; a
	// regression that stops coalescing would pass the ordering checks
	// silently without this.
	var batches int64
	for _, o := range os {
		batches += o.Counter("vsync.batch.sends").Value()
	}
	if batches == 0 {
		t.Fatal("no tBatch frames sent under pipelined load")
	}
}

// TestSeqRangeCrashPartialDelivery targets the batched-ordering recovery
// case: the coordinator allocates a contiguous sequence range (tOrderedRun)
// that reaches only part of the group — one member's link is cut — and then
// crashes. The survivors' recovery must rebuild sequencing state from the
// highest delivered sequence, resync the laggard by state transfer, and
// dedup the clients' retransmissions, so the final logs have no gap and no
// duplicate even though the range was torn mid-flight.
func TestSeqRangeCrashPartialDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test skipped in -short mode")
	}
	const (
		nodes     = 5
		issuers   = 3
		perIssuer = 10
	)
	net := simnet.New(cost.DefaultModel())
	nds := make(map[transport.NodeID]*Node, nodes)
	hs := make(map[transport.NodeID]*testHandler, nodes)
	os := make(map[transport.NodeID]*obs.Obs, nodes)
	for id := transport.NodeID(1); id <= nodes; id++ {
		ep, err := net.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		th := newTestHandler()
		o := obs.New(obs.Options{})
		nds[id] = NewNodeWith(ep, th, o)
		hs[id] = th
		os[id] = o
	}
	t.Cleanup(func() {
		for _, nd := range nds {
			nd.Close()
		}
	})
	for id := transport.NodeID(1); id <= nodes; id++ {
		if err := nds[id].Join("g"); err != nil {
			t.Fatal(err)
		}
	}

	// Tear the coordinator→member-3 link: every run the coordinator emits
	// from here on is partially delivered (members 2, 4, 5 apply; 3 never
	// sees it), and no gather can complete — the in-flight window at the
	// crash is maximal.
	net.Cut(1, 3)

	var succeeded sync.Map
	var wg sync.WaitGroup
	for id := transport.NodeID(2); id <= nodes; id++ {
		for w := 0; w < issuers; w++ {
			wg.Add(1)
			go func(id transport.NodeID, nd *Node, w int) {
				defer wg.Done()
				for m := 0; m < perIssuer; m++ {
					payload := fmt.Sprintf("r%d-w%d-m%d", id, w, m)
					res, err := nd.Gcast("g", []byte(payload))
					if err == nil && !res.Fail {
						succeeded.Store(payload, true)
					}
				}
			}(id, nds[id], w)
		}
	}
	// Let ranges be allocated and partially delivered, then kill the
	// sequencer. Successor recovery (node 2) must resync node 3 from the
	// survivor with the highest delivered sequence.
	time.Sleep(3 * time.Millisecond)
	net.Crash(1)
	nds[1].Close()
	delete(nds, 1)
	delete(hs, 1)
	wg.Wait()

	var survivor *Node
	for _, nd := range nds {
		survivor = nd
		break
	}
	if _, err := survivor.Gcast("g", []byte("final")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "logs converge", func() bool {
		length := -1
		for id, nd := range nds {
			if !nd.Member("g") {
				continue
			}
			got := len(hs[id].log("g"))
			if length == -1 {
				length = got
				continue
			}
			if got != length {
				return false
			}
		}
		return true
	})

	// Identical, gap-free, duplicate-free logs across survivors.
	var ref []string
	var refID transport.NodeID
	for id, nd := range nds {
		if !nd.Member("g") {
			continue
		}
		got := hs[id].log("g")
		if ref == nil {
			ref, refID = got, id
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("log length mismatch: node %d has %d, node %d has %d",
				id, len(got), refID, len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order divergence at %d: node %d %q vs node %d %q",
					i, id, got[i], refID, ref[i])
			}
		}
	}
	seen := make(map[string]int, len(ref))
	for _, m := range ref {
		seen[m]++
		if seen[m] > 1 {
			t.Fatalf("duplicate delivery %q", m)
		}
	}
	succeeded.Range(func(k, _ any) bool {
		if seen[k.(string)] != 1 {
			t.Errorf("successful gcast %q delivered %d times", k, seen[k.(string)])
		}
		return true
	})

	// The load must have exercised the run path: without emitted runs the
	// partial-delivery scenario this test exists for never happened.
	var runs, casts int64
	for _, o := range os {
		runs += o.Counter("vsync.order.runs").Value()
		casts += o.Counter("vsync.order.run.casts").Value()
	}
	if runs == 0 || casts == 0 {
		t.Fatalf("no tOrderedRun traffic under pipelined load (runs=%d casts=%d)", runs, casts)
	}
}
