package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"paso/internal/class"
	"paso/internal/semantics"
	"paso/internal/transport"
)

// leaseTestConfig pins an explicit round-robin support map (the same shape
// NewCluster would derive) so every machine can see wg(C) membership in its
// own cfg — the lease target source in non-placed clusters — and turns the
// leased-read fast path on.
func leaseTestConfig(n int) Config {
	cfg := testConfig()
	cfg.LeasedReads = true
	classes := cfg.Classifier.Classes()
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	sup := make(map[class.ID][]transport.NodeID, len(classes))
	for i, cls := range classes {
		ids := make([]transport.NodeID, 0, cfg.Lambda+1)
		for k := 0; k <= cfg.Lambda; k++ {
			ids = append(ids, transport.NodeID((i+k)%n+1))
		}
		sup[cls] = ids
	}
	cfg.Support = sup
	return cfg
}

// leaseOutsider returns a machine ID outside the class's support set.
func leaseOutsider(t *testing.T, sup []transport.NodeID, n int) transport.NodeID {
	t.Helper()
	in := make(map[transport.NodeID]bool, len(sup))
	for _, id := range sup {
		in[id] = true
	}
	for id := transport.NodeID(1); id <= transport.NodeID(n); id++ {
		if !in[id] {
			return id
		}
	}
	t.Fatal("no machine outside the support set")
	return 0
}

// TestLeasedReadFastPath drives reads from a non-member with leases on and
// asserts the steady-view criterion: the fast path serves (well over) 90%
// of them, the OpReadLeased stats row carries them, and the §3.3 audit
// prices the ordering cost they saved.
func TestLeasedReadFastPath(t *testing.T) {
	const n = 4
	cfg := leaseTestConfig(n)
	c := newTestCluster(t, cfg, n)

	cls := cfg.Classifier.ClassOf(taskTuple(7))
	sup := cfg.Support[cls]
	m := c.Machine(leaseOutsider(t, sup, n))

	if _, err := c.Machine(sup[0]).Insert(taskTuple(7)); err != nil {
		t.Fatal(err)
	}

	const reads = 50
	for i := 0; i < reads; i++ {
		obj, ok, err := m.Read(taskTplExact(7))
		if err != nil || !ok {
			t.Fatalf("read %d: %v ok=%v", i, err, ok)
		}
		if obj.Arity() != 2 {
			t.Fatalf("read %d returned wrong tuple %v", i, obj)
		}
	}

	leased, fallback, saved := m.LeaseStats()
	if leased+fallback != reads {
		t.Fatalf("leased=%d fallback=%d, want %d attempts total", leased, fallback, reads)
	}
	if frac := float64(leased) / float64(reads); frac < 0.9 {
		t.Errorf("leased fraction %.2f < 0.90 in a steady view (leased=%d fallback=%d)",
			frac, leased, fallback)
	}
	if saved <= 0 {
		t.Error("no §3.3 saving accounted for leased reads")
	}
	st := m.Stats()
	if got := int64(st[OpReadLeased].Count); got != leased {
		t.Errorf("OpReadLeased stats count = %d, want %d", got, leased)
	}
	if got := int64(st[OpReadRemote].Count); got != fallback {
		t.Errorf("OpReadRemote stats count = %d, want the %d fallbacks", got, fallback)
	}

	rep := m.RenderLeaseReport()
	for _, want := range []string{string(cls), "saved msg-cost"} {
		if !strings.Contains(rep, want) {
			t.Errorf("lease report missing %q:\n%s", want, rep)
		}
	}
}

// TestStatsCommandRendersLeaseTable checks the wire-protocol `stats` verb
// (pasoctl stats) appends the per-class leased/fallback table when the fast
// path is on.
func TestStatsCommandRendersLeaseTable(t *testing.T) {
	const n = 4
	cfg := leaseTestConfig(n)
	c := newTestCluster(t, cfg, n)

	cls := cfg.Classifier.ClassOf(taskTuple(3))
	m := c.Machine(leaseOutsider(t, cfg.Support[cls], n))
	if _, err := c.Machine(cfg.Support[cls][0]).Insert(taskTuple(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.Read(taskTplExact(3)); err != nil || !ok {
		t.Fatalf("read: %v ok=%v", err, ok)
	}

	resp := ExecuteCommand(m, "stats")
	for _, want := range []string{"read-leased", "leases", string(cls)} {
		if !strings.Contains(resp, want) {
			t.Errorf("stats response missing %q:\n%s", want, resp)
		}
	}
}

// TestLeasedReadMissFallsThrough checks a leased miss is a real answer, not
// a fallback: the member answers "no match" under the lease and the read
// completes without touching the ordered path.
func TestLeasedReadMissFallsThrough(t *testing.T) {
	const n = 4
	cfg := leaseTestConfig(n)
	c := newTestCluster(t, cfg, n)

	cls := cfg.Classifier.ClassOf(taskTuple(1))
	m := c.Machine(leaseOutsider(t, cfg.Support[cls], n))

	_, ok, err := m.Read(taskTplExact(99))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("read of absent tuple reported a match")
	}
	leased, fallback, _ := m.LeaseStats()
	if leased != 1 || fallback != 0 {
		t.Errorf("leased=%d fallback=%d, want the miss served on the fast path", leased, fallback)
	}
}

// TestLeasedReadStormMemberCrash crashes a wg(C) member in the middle of a
// leased read storm and asserts zero stale reads: every read either leased
// from a live member under a matching epoch or fell back to the ordered
// path, so the merged history must satisfy the A1–A3 semantics exactly as
// with leases off.
func TestLeasedReadStormMemberCrash(t *testing.T) {
	const (
		n          = 5
		inserts    = 20
		perReader  = 120
		crashAfter = 60 // total reads before the member dies
	)
	cfg := leaseTestConfig(n)
	c := newTestCluster(t, cfg, n)

	cls := cfg.Classifier.ClassOf(taskTuple(0))
	sup := cfg.Support[cls]
	rec := semantics.NewRecorder()

	writer := c.Machine(sup[0])
	for i := int64(0); i < inserts; i++ {
		start := rec.Begin()
		obj, err := writer.Insert(taskTuple(i))
		rec.EndInsert(int(sup[0]), start, obj, err)
		if err != nil {
			t.Fatal(err)
		}
	}

	// Readers are all the machines outside wg(C); every read goes through
	// the leased path until the crash fences it mid-flight.
	var readers []*Machine
	in := make(map[transport.NodeID]bool, len(sup))
	for _, id := range sup {
		in[id] = true
	}
	for id := transport.NodeID(1); id <= transport.NodeID(n); id++ {
		if !in[id] {
			readers = append(readers, c.Machine(id))
		}
	}

	var done int64
	crashed := make(chan struct{})
	var wg sync.WaitGroup
	for _, m := range readers {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			for i := int64(0); i < perReader; i++ {
				start := rec.Begin()
				obj, ok, err := m.Read(taskTplExact(i % inserts))
				rec.EndRead(int(m.ID()), start, obj, ok && err == nil)
				atomic.AddInt64(&done, 1)
			}
		}(m)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(crashed)
		for atomic.LoadInt64(&done) < crashAfter {
		}
		c.Crash(sup[1])
	}()
	wg.Wait()
	<-crashed

	if viol := semantics.Check(rec.History()); len(viol) != 0 {
		for _, v := range viol {
			t.Errorf("semantics violation: %v", v)
		}
		t.Fatalf("%d stale/inconsistent reads under the crashed lease", len(viol))
	}
	if err := c.CheckFaultTolerance(); err != nil {
		t.Fatalf("fault tolerance after crash: %v", err)
	}

	var leased int64
	for _, m := range readers {
		l, _, _ := m.LeaseStats()
		leased += l
	}
	if leased == 0 {
		t.Error("storm never exercised the fast path")
	}
}
