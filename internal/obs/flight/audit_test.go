package flight

import (
	"testing"
	"time"

	"paso/internal/transport"
)

func TestAuditTrailRingWraps(t *testing.T) {
	a := NewAuditTrail(4)
	for i := 0; i < 10; i++ {
		a.RecordOwnership("wg/x/0", uint64(i), transport.NodeID(i%3+1), OwnFresh, 0)
	}
	if a.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", a.Total())
	}
	evs := a.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(6 + i)
		if e.Seq != wantSeq || e.Epoch != wantSeq {
			t.Fatalf("event %d = seq %d epoch %d, want %d (oldest-first order)", i, e.Seq, e.Epoch, wantSeq)
		}
	}
}

func TestAuditTrailOwners(t *testing.T) {
	a := NewAuditTrail(0)
	a.RecordOwnership("wg/a/0", 1, 1, OwnFresh, 0)
	a.RecordOwnership("wg/a/0", 2, 3, OwnTakeover, 700*time.Millisecond)
	a.RecordOwnership("wg/b/0", 1, 2, OwnFresh, 0)
	a.RecordOwnership("wg/b/0", 3, 4, OwnAbdicate, 0)

	owners := a.Owners()
	ea, ok := owners["wg/a/0"]
	if !ok || ea.Owner != 3 || ea.Kind != OwnTakeover {
		t.Fatalf("wg/a/0 owner = %+v, want takeover by 3", ea)
	}
	if ea.TakeoverSeconds != 0.7 {
		t.Fatalf("takeover seconds = %v, want 0.7", ea.TakeoverSeconds)
	}
	// The abdicate edge points away from this machine; the newest
	// non-abdicate record (the fresh claim) remains the trail's view.
	eb, ok := owners["wg/b/0"]
	if !ok || eb.Owner != 2 || eb.Kind != OwnFresh {
		t.Fatalf("wg/b/0 owner = %+v, want fresh by 2", eb)
	}
}

func TestAuditTrailDeterministicClock(t *testing.T) {
	a := NewAuditTrail(0)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	a.SetNow(func() time.Time { return base })
	a.RecordOwnership("wg/a/0", 1, 1, OwnFresh, 0)
	if got := a.Events()[0].Time; !got.Equal(base) {
		t.Fatalf("event time = %v, want injected %v", got, base)
	}
}
