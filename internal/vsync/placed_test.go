package vsync

import (
	"fmt"
	"testing"

	"paso/internal/class"
	"paso/internal/cost"
	"paso/internal/placement"
	"paso/internal/simnet"
	"paso/internal/transport"
)

// Placed-mode integration tests: nodes share a placement.Policy CoordFn, so
// each group is sequenced by its placed owner instead of the single lowest
// live ID (PROTOCOL.md, "Sharded groups").

func testClasses(n int) []class.ID {
	cs := make([]class.ID, n)
	for i := range cs {
		cs[i] = class.ID(fmt.Sprintf("c%d", i))
	}
	return cs
}

func wgOf(cls class.ID) string { return "wg/" + string(cls) }

// newPlacedHarness builds a harness whose nodes run placed mode over the
// given class universe with λ = 1.
func newPlacedHarness(t *testing.T, classes []class.ID, ids ...transport.NodeID) (*harness, *placement.Policy) {
	t.Helper()
	pol := placement.New(classes, 1)
	h := &harness{
		t:       t,
		net:     simnet.New(cost.DefaultModel()),
		eps:     make(map[transport.NodeID]*simnet.Endpoint),
		nds:     make(map[transport.NodeID]*Node),
		hs:      make(map[transport.NodeID]*testHandler),
		coordFn: pol.CoordFn(),
	}
	for _, id := range ids {
		h.start(id)
	}
	t.Cleanup(func() {
		for _, nd := range h.nds {
			nd.Close()
		}
	})
	return h, pol
}

// joinAll joins every node to every class's wg group.
func joinAll(t *testing.T, h *harness, classes []class.ID, ids ...transport.NodeID) {
	t.Helper()
	for _, id := range ids {
		for _, cls := range classes {
			if err := h.nds[id].Join(wgOf(cls)); err != nil {
				t.Fatalf("node %d join %s: %v", id, cls, err)
			}
		}
	}
}

// logsConverge waits until every listed node's log for every group reaches
// want entries, then asserts the logs are identical (total order) and free
// of duplicates.
func logsConverge(t *testing.T, h *harness, classes []class.ID, want int, ids ...transport.NodeID) {
	t.Helper()
	waitFor(t, "logs to converge", func() bool {
		for _, id := range ids {
			for _, cls := range classes {
				if len(h.hs[id].log(wgOf(cls))) < want {
					return false
				}
			}
		}
		return true
	})
	for _, cls := range classes {
		ref := h.hs[ids[0]].log(wgOf(cls))
		if len(ref) != want {
			t.Fatalf("%s: node %d delivered %d messages, want %d: %v", cls, ids[0], len(ref), want, ref)
		}
		seen := make(map[string]bool, len(ref))
		for _, m := range ref {
			if seen[m] {
				t.Fatalf("%s: duplicate delivery %q in %v", cls, m, ref)
			}
			seen[m] = true
		}
		for _, id := range ids[1:] {
			got := h.hs[id].log(wgOf(cls))
			if len(got) != len(ref) {
				t.Fatalf("%s: node %d delivered %d messages, node %d delivered %d", cls, id, len(got), ids[0], len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s: node %d log %v, node %d log %v", cls, id, got, ids[0], ref)
				}
			}
		}
	}
}

// TestPlacedSpreadAndTotalOrder checks the tentpole's two core properties
// together: coordinator load spreads under the placement cap, and every
// group still delivers one total order with casts arriving from every node.
func TestPlacedSpreadAndTotalOrder(t *testing.T) {
	classes := testClasses(9)
	ids := []transport.NodeID{1, 2, 3}
	h, pol := newPlacedHarness(t, classes, ids...)
	joinAll(t, h, classes, ids...)

	asn := pol.Assign(ids)
	counts := make(map[transport.NodeID]int)
	for _, owner := range asn.Coord {
		counts[owner]++
	}
	for _, id := range ids {
		if counts[id] == 0 || counts[id] > asn.Cap {
			t.Fatalf("degenerate spread: node %d owns %d of %d classes (cap %d)", id, counts[id], len(classes), asn.Cap)
		}
	}

	const perGroup = 6
	for i := 0; i < perGroup; i++ {
		for _, cls := range classes {
			sender := ids[i%len(ids)]
			res, err := h.nds[sender].Gcast(wgOf(cls), []byte(fmt.Sprintf("%s-m%d", cls, i)))
			if err != nil || res.Fail {
				t.Fatalf("gcast %s #%d from %d: %v %+v", cls, i, sender, err, res)
			}
		}
	}
	logsConverge(t, h, classes, perGroup, ids...)
}

// TestPlacedCoordinatorCrashIsolatesClasses is the churn property the
// sharding exists for: when one class's coordinator dies, other classes
// keep sequencing undisturbed, and the orphaned class recovers on its new
// owner without losing acknowledged casts.
func TestPlacedCoordinatorCrashIsolatesClasses(t *testing.T) {
	classes := testClasses(6)
	ids := []transport.NodeID{1, 2, 3}
	h, pol := newPlacedHarness(t, classes, ids...)
	joinAll(t, h, classes, ids...)

	for _, cls := range classes {
		if res, err := h.nds[2].Gcast(wgOf(cls), []byte(string(cls)+"-pre")); err != nil || res.Fail {
			t.Fatalf("baseline gcast %s: %v %+v", cls, err, res)
		}
	}

	asn := pol.Assign(ids)
	victim := asn.Coord[classes[0]]
	var survivors []transport.NodeID
	for _, id := range ids {
		if id != victim {
			survivors = append(survivors, id)
		}
	}
	h.crash(victim)

	// Every class — the orphaned ones included — must accept new casts from
	// the survivors; orphans go through a takeover recovery first.
	for _, cls := range classes {
		res, err := h.nds[survivors[0]].Gcast(wgOf(cls), []byte(string(cls)+"-post"))
		if err != nil || res.Fail {
			t.Fatalf("post-crash gcast %s: %v %+v", cls, err, res)
		}
	}
	logsConverge(t, h, classes, 2, survivors...)
	for _, cls := range classes {
		log := h.hs[survivors[0]].log(wgOf(cls))
		if log[0] != string(cls)+"-pre" || log[1] != string(cls)+"-post" {
			t.Fatalf("%s: acked cast lost or reordered: %v", cls, log)
		}
	}
}

// TestPlacedJoinRebalance starts a third machine after traffic exists: only
// the classes the policy moves change owner, the moved groups keep serving
// casts through the handoff, and no acknowledged cast is lost or replayed.
func TestPlacedJoinRebalance(t *testing.T) {
	classes := testClasses(8)
	members := []transport.NodeID{1, 2}
	h, pol := newPlacedHarness(t, classes, members...)
	joinAll(t, h, classes, members...)

	for _, cls := range classes {
		if res, err := h.nds[1].Gcast(wgOf(cls), []byte(string(cls)+"-pre")); err != nil || res.Fail {
			t.Fatalf("baseline gcast %s: %v %+v", cls, err, res)
		}
	}

	before := pol.Assign(members)
	h.start(3)
	after := pol.Assign([]transport.NodeID{1, 2, 3})
	moved := pol.MovedClasses(before, after)
	if len(moved) == 0 {
		t.Fatal("no classes moved to the new machine; spread cap broken")
	}
	for _, cls := range moved {
		if after.Coord[cls] != 3 {
			t.Fatalf("class %s moved to %d, not the newcomer", cls, after.Coord[cls])
		}
	}

	// The newcomer owns moved groups it has never seen: member nudges force
	// it through a recovery before it sequences, so the series continues.
	for _, cls := range classes {
		res, err := h.nds[2].Gcast(wgOf(cls), []byte(string(cls)+"-post"))
		if err != nil || res.Fail {
			t.Fatalf("post-join gcast %s: %v %+v", cls, err, res)
		}
	}
	logsConverge(t, h, classes, 2, members...)
	for _, cls := range classes {
		log := h.hs[1].log(wgOf(cls))
		if log[0] != string(cls)+"-pre" || log[1] != string(cls)+"-post" {
			t.Fatalf("%s: handoff lost or reordered a cast: %v", cls, log)
		}
	}
}

// TestPlacedOwnerCrashKeepsSeries hammers one group across an owner crash:
// the rebuilt sequence series continues past every acknowledged cast, so
// survivors deliver one gap-free, duplicate-free total order.
func TestPlacedOwnerCrashKeepsSeries(t *testing.T) {
	classes := testClasses(1)
	ids := []transport.NodeID{1, 2, 3}
	h, pol := newPlacedHarness(t, classes, ids...)
	joinAll(t, h, classes, ids...)

	owner := pol.Assign(ids).Coord[classes[0]]
	var survivors []transport.NodeID
	for _, id := range ids {
		if id != owner {
			survivors = append(survivors, id)
		}
	}
	g := wgOf(classes[0])
	for i := 0; i < 10; i++ {
		if res, err := h.nds[survivors[0]].Gcast(g, []byte(fmt.Sprintf("m%02d", i))); err != nil || res.Fail {
			t.Fatalf("gcast %d: %v %+v", i, err, res)
		}
	}
	h.crash(owner)
	for i := 10; i < 20; i++ {
		sender := survivors[i%len(survivors)]
		if res, err := h.nds[sender].Gcast(g, []byte(fmt.Sprintf("m%02d", i))); err != nil || res.Fail {
			t.Fatalf("gcast %d after crash: %v %+v", i, err, res)
		}
	}
	logsConverge(t, h, classes, 20, survivors...)
	log := h.hs[survivors[0]].log(g)
	for i, m := range log {
		if m != fmt.Sprintf("m%02d", i) {
			t.Fatalf("series broke at %d: %v", i, log)
		}
	}
}
