package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"paso/internal/obs"
	"paso/internal/stats"
)

// OpKind labels PASO operations for cost accounting (Figure 1's rows).
type OpKind int

// Operation kinds.
const (
	// OpInsert is insert(o).
	OpInsert OpKind = iota + 1
	// OpReadLocal is a read(sc) served from the local replica (M ∈ wg(C)).
	OpReadLocal
	// OpReadRemote is a read(sc) served by gcast (M ∉ wg(C)).
	OpReadRemote
	// OpReadLeased is a read(sc) served by the epoch-fenced leased fast
	// path (M ∉ wg(C), no sequencer involved; PROTOCOL.md "Leased reads").
	OpReadLeased
	// OpReadDel is read&del(sc).
	OpReadDel
	// OpJoin is a g-join triggered by the adaptive policy or recovery.
	OpJoin
	// OpLeave is a policy-triggered g-leave.
	OpLeave
	// OpSwap is the atomic swap extension (one ordered remove+insert).
	OpSwap
)

// allOpKinds lists every operation kind in Figure 1 row order.
var allOpKinds = []OpKind{OpInsert, OpReadLocal, OpReadRemote, OpReadLeased, OpReadDel, OpJoin, OpLeave, OpSwap}

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpReadLocal:
		return "read-local"
	case OpReadRemote:
		return "read-remote"
	case OpReadLeased:
		return "read-leased"
	case OpReadDel:
		return "read&del"
	case OpJoin:
		return "g-join"
	case OpLeave:
		return "g-leave"
	case OpSwap:
		return "swap"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// OpStats aggregates the paper's three cost measures for one operation
// kind on one machine.
type OpStats struct {
	Count   int
	MsgCost float64 // Figure 1 msg-cost under the α+β model
	Work    float64 // summed server work (probe units × replicas)
	Time    float64 // critical-path units (one server's probes + transit)
	Fails   int
}

// add merges a single operation's costs.
func (s *OpStats) add(msg, work, tm float64, fail bool) {
	s.Count++
	s.MsgCost += msg
	s.Work += work
	s.Time += tm
	if fail {
		s.Fails++
	}
}

// opMeter is a concurrency-safe per-kind aggregator.
type opMeter struct {
	mu sync.Mutex
	m  map[OpKind]*OpStats
}

func newOpMeter() *opMeter {
	return &opMeter{m: make(map[OpKind]*OpStats)}
}

func (o *opMeter) add(kind OpKind, msg, work, tm float64, fail bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.m[kind]
	if !ok {
		s = &OpStats{}
		o.m[kind] = s
	}
	s.add(msg, work, tm, fail)
}

// snapshot returns a copy of the aggregates.
func (o *opMeter) snapshot() map[OpKind]OpStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[OpKind]OpStats, len(o.m))
	for k, v := range o.m {
		out[k] = *v
	}
	return out
}

// OpReport is one row of a machine's live per-op report: the Figure 1
// cost aggregates plus wall-clock latency (seconds) from the machine's
// per-kind histogram. LatCount is the histogram's population — zero means
// the latency columns are meaningless and render as "—".
type OpReport struct {
	Kind OpKind
	OpStats
	LatCount uint64
	LatMean  float64
	LatP50   float64
	LatP90   float64
	LatP99   float64
}

// latMs renders one latency quantile column: milliseconds, or "—" when the
// histogram recorded nothing (a 0.00 would read as a real measurement).
func latMs(count uint64, seconds float64) string {
	if count == 0 {
		return "—"
	}
	return stats.F(seconds * 1e3)
}

// RenderReport formats reports as the Figure-1-style per-op table: one row
// per operation kind with counts, the three model cost measures, and the
// observed latency quantiles in milliseconds. Rows are sorted by kind so
// repeated invocations render identically.
func RenderReport(rs []OpReport) string {
	rs = append([]OpReport(nil), rs...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Kind < rs[j].Kind })
	tb := stats.NewTable("stats", "per-op costs (Figure 1 measures + live latency)",
		"op", "count", "fail", "msg-cost", "work", "time", "p50ms", "p90ms", "p99ms")
	for _, r := range rs {
		tb.AddRow(r.Kind.String(), stats.D(r.Count), stats.D(r.Fails),
			stats.F(r.MsgCost), stats.F(r.Work), stats.F(r.Time),
			latMs(r.LatCount, r.LatP50), latMs(r.LatCount, r.LatP90), latMs(r.LatCount, r.LatP99))
	}
	if len(rs) == 0 {
		tb.AddNote("no operations recorded yet")
	}
	return tb.Render()
}

// RenderStages formats the per-stage latency histograms (obs.Stage*) as a
// table in pipeline order: one row per stage with the population and the
// latency quantiles in milliseconds. Stages that recorded nothing render
// "—" columns; hists is keyed by stage histogram name as produced by
// obs.Registry.Snapshot.
func RenderStages(hists map[string]obs.HistSnapshot) string {
	tb := stats.NewTable("stages", "per-stage latency (pipeline order)",
		"stage", "count", "p50ms", "p90ms", "p99ms", "p999ms")
	for _, name := range obs.StageOrderNames {
		h := hists[name]
		tb.AddRow(obs.StageShort(name), stats.D(int(h.Count)),
			latMs(h.Count, h.P50), latMs(h.Count, h.P90),
			latMs(h.Count, h.P99), latMs(h.Count, h.P999))
	}
	return tb.Render()
}

// ReportMetrics flattens reports into scrape-time metrics for an
// obs.Collector, one name per (kind, measure):
// core.op.<kind>.{count,fails,msg_cost,work,time}.
func ReportMetrics(rs []OpReport) map[string]float64 {
	out := make(map[string]float64, len(rs)*5)
	for _, r := range rs {
		prefix := "core.op." + r.Kind.String() + "."
		out[prefix+"count"] = float64(r.Count)
		out[prefix+"fails"] = float64(r.Fails)
		out[prefix+"msg_cost"] = r.MsgCost
		out[prefix+"work"] = r.Work
		out[prefix+"time"] = r.Time
	}
	return out
}

// renderStatsLine renders reports as the single-line protocol form used by
// the legacy "stat" verb.
func renderStatsLine(rs []OpReport) string {
	parts := make([]string, 0, len(rs))
	for _, r := range rs {
		parts = append(parts, fmt.Sprintf("%s=%d(msg=%.0f,work=%.0f)",
			r.Kind, r.Count, r.MsgCost, r.Work))
	}
	if len(parts) == 0 {
		return "no-ops"
	}
	return strings.Join(parts, " ")
}
