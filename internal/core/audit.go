package core

import (
	"paso/internal/class"
	"paso/internal/opt"
)

// auditWindow caps the per-class event log backing the live
// competitive-ratio audit. When full, the window resets and accounting
// restarts, so the gauge reflects recent behavior; the reset forgets any
// join the machine paid before it, which the theorem's additive slack (one
// K) absorbs.
const auditWindow = 8192

// ratioAuditor is the live §5.1 competitive-ratio audit for one
// (machine, class) pair with the machine outside B(C). The hot-path hooks
// (policyRead, onUpdate) charge the online policy the model cost of what
// actually happened — member read 1, non-member read q·r, member update 1,
// join K at decision time, leave free — and append the same event to a
// replay log. At scrape time the log is run through opt.Optimal, and the
// gauge reports online/OPT with the theorem's additive slack subtracted,
// so tests and operators can watch the Theorem 2/3 bounds (3+λ/K, 6+2λ/K)
// hold on the running system. Callers hold polMu.
type ratioAuditor struct {
	events        []opt.Event
	online        float64
	joins, leaves int
	maxK          int
	costAware     bool
	resets        int
}

// read charges one read observed at this machine. joined marks a Join
// decision triggered by this read (charged K immediately, as opt.Run does).
func (a *ratioAuditor) read(member bool, rgSize, joinCost int, joined bool) {
	e := opt.Event{Kind: opt.Read, RgSize: rgSize, JoinCost: joinCost, QCost: 1}.Normalized()
	if member {
		a.online += e.CostIn()
	} else {
		a.online += e.CostOut()
		if joined {
			a.online += float64(e.JoinCost)
			a.joins++
		}
	}
	a.push(e)
}

// update charges one member update (cost 1; leaving is free).
func (a *ratioAuditor) update(joinCost int, left bool) {
	e := opt.Event{Kind: opt.Update, RgSize: 1, JoinCost: joinCost, QCost: 1}.Normalized()
	a.online += e.CostIn()
	if left {
		a.leaves++
	}
	a.push(e)
}

func (a *ratioAuditor) push(e opt.Event) {
	if e.JoinCost > a.maxK {
		a.maxK = e.JoinCost
	}
	if len(a.events) >= auditWindow {
		a.events = a.events[:0]
		a.online = 0
		a.joins, a.leaves = 0, 0
		a.resets++
	}
	a.events = append(a.events, e)
}

// ratio replays the event log through the exact offline optimum and
// returns (online − slack)/OPT along with OPT's cost. The slack is 2·K
// for threshold policies (Theorem 2's additive constant) and 4·K for
// cost-aware doubling/halving ones (Theorem 3 tracks a working K that can
// lag the real one by 2×). ok is false while no events have been
// observed. While online ≤ slack the reported ratio clamps to 0: the
// sequence is still inside the additive constant the theorems grant for
// free, so no bound can be violated yet.
func (a *ratioAuditor) ratio() (r, optCost float64, ok bool) {
	if len(a.events) == 0 {
		return 0, 0, false
	}
	sched := opt.Optimal(a.events)
	slack := float64(2 * a.maxK)
	if a.costAware {
		slack = float64(4 * a.maxK)
	}
	return opt.Ratio(a.online, sched.Cost, slack), sched.Cost, true
}

// auditFor returns (creating lazily) the class's auditor; callers hold
// polMu. Classes this machine basically supports are not audited — the
// §5.1 game is defined for M ∉ B(C), and a basic machine never leaves.
func (m *Machine) auditFor(cls class.ID, costAware bool) *ratioAuditor {
	a, ok := m.audits[cls]
	if !ok {
		a = &ratioAuditor{costAware: costAware}
		m.audits[cls] = a
	}
	return a
}

// collectAudit is the scrape-time collector behind the per-class
// adaptive.ratio gauges (surfaced under "derived" in /metrics JSON and as
// Prometheus gauges in the text format).
func (m *Machine) collectAudit() map[string]float64 {
	m.polMu.Lock()
	defer m.polMu.Unlock()
	out := make(map[string]float64)
	for cls, a := range m.audits {
		r, optCost, ok := a.ratio()
		if !ok {
			continue
		}
		out["adaptive.ratio."+string(cls)] = r
		out["adaptive.online."+string(cls)] = a.online
		out["adaptive.opt."+string(cls)] = optCost
		out["adaptive.audit.events."+string(cls)] = float64(len(a.events))
		out["adaptive.audit.joins."+string(cls)] = float64(a.joins)
	}
	return out
}

// AuditRatio reports the class's live competitive ratio against the
// offline optimum ((online − slack)/OPT; see ratioAuditor). ok is false
// when the class has no audit yet (no events, or this machine basically
// supports it).
func (m *Machine) AuditRatio(cls class.ID) (r float64, ok bool) {
	m.polMu.Lock()
	defer m.polMu.Unlock()
	a, exists := m.audits[cls]
	if !exists {
		return 0, false
	}
	r, _, ok = a.ratio()
	return r, ok
}
