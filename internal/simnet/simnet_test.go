package simnet

import (
	"testing"
	"time"

	"paso/internal/cost"
	"paso/internal/transport"
)

func newNet(t *testing.T) *Net {
	t.Helper()
	return New(cost.Model{Alpha: 10, Beta: 1})
}

// recvMsg pulls items until a KindMsg arrives or times out.
func recvMsg(t *testing.T, ep *Endpoint) transport.Item {
	t.Helper()
	timeout := time.After(5 * time.Second)
	for {
		select {
		case it, ok := <-ep.Recv():
			if !ok {
				t.Fatal("stream closed while waiting for message")
			}
			if it.Kind == transport.KindMsg {
				return it
			}
		case <-timeout:
			t.Fatal("timed out waiting for message")
		}
	}
}

// recvEvent pulls items until an Up/Down event for the given node arrives.
func recvEvent(t *testing.T, ep *Endpoint, kind transport.ItemKind, node transport.NodeID) {
	t.Helper()
	timeout := time.After(5 * time.Second)
	for {
		select {
		case it, ok := <-ep.Recv():
			if !ok {
				t.Fatalf("stream closed waiting for %v(%d)", kind, node)
			}
			if it.Kind == kind && it.From == node {
				return
			}
		case <-timeout:
			t.Fatalf("timed out waiting for %v(%d)", kind, node)
		}
	}
}

func TestSendDeliver(t *testing.T) {
	n := newNet(t)
	a, err := n.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	it := recvMsg(t, b)
	if it.From != 1 || string(it.Payload) != "hi" {
		t.Fatalf("got %+v", it)
	}
}

func TestFIFOPerSender(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	for i := byte(0); i < 50; i++ {
		if err := a.Send(2, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 50; i++ {
		it := recvMsg(t, b)
		if it.Payload[0] != i {
			t.Fatalf("out of order: got %d want %d", it.Payload[0], i)
		}
	}
}

func TestPayloadCopied(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	buf := []byte("abc")
	_ = a.Send(2, buf)
	buf[0] = 'z'
	it := recvMsg(t, b)
	if string(it.Payload) != "abc" {
		t.Fatalf("payload aliased sender buffer: %q", it.Payload)
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	n := newNet(t)
	if _, err := n.Join(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Join(1); err == nil {
		t.Fatal("double join should fail")
	}
}

func TestUpEventsOnJoin(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	recvEvent(t, a, transport.KindUp, 2) // existing node learns of 2
	recvEvent(t, b, transport.KindUp, 1) // joiner is primed with 1
}

func TestCrashEventsAndStreamClose(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	n.Crash(2)
	recvEvent(t, a, transport.KindDown, 2)
	// b's stream must close.
	timeout := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-b.Recv():
			if !ok {
				goto closed
			}
		case <-timeout:
			t.Fatal("crashed endpoint stream never closed")
		}
	}
closed:
	if err := b.Send(1, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("Send after crash = %v, want ErrClosed", err)
	}
}

func TestCrashLosesQueuedMessages(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	_ = a.Send(2, []byte("lost"))
	n.Crash(2)
	// Restart node 2: it must NOT receive the pre-crash message.
	b2, err := n.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Send(2, []byte("fresh"))
	it := recvMsg(t, b2)
	if string(it.Payload) != "fresh" {
		t.Fatalf("restarted node got stale message %q", it.Payload)
	}
	_ = b
}

func TestSendToDeadNodeIsMeteredNotError(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	before := n.Meter().Snapshot().Messages
	if err := a.Send(99, []byte("void")); err != nil {
		t.Fatalf("send to dead node errored: %v", err)
	}
	if after := n.Meter().Snapshot().Messages; after != before+1 {
		t.Errorf("bus not metered for dead-destination frame")
	}
}

func TestAliveSorted(t *testing.T) {
	n := newNet(t)
	_, _ = n.Join(3)
	ep, _ := n.Join(1)
	_, _ = n.Join(2)
	got := ep.Alive()
	want := []transport.NodeID{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("Alive = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alive = %v, want %v", got, want)
		}
	}
	n.Crash(2)
	if len(ep.Alive()) != 2 {
		t.Errorf("Alive after crash = %v", ep.Alive())
	}
	if !n.Live(1) || n.Live(2) {
		t.Error("Live() wrong")
	}
}

func TestMeterAccumulatesAlphaBeta(t *testing.T) {
	n := New(cost.Model{Alpha: 7, Beta: 2})
	a, _ := n.Join(1)
	_, _ = n.Join(2)
	_ = a.Send(2, make([]byte, 10))
	got := n.Meter().Snapshot()
	if got.MsgCost != 7+2*10 {
		t.Errorf("msg cost = %v, want 27", got.MsgCost)
	}
	if got.Bytes != 10 {
		t.Errorf("bytes = %d", got.Bytes)
	}
}

func TestCloseIsGracefulLeave(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	recvEvent(t, a, transport.KindDown, 2)
}

func TestFlapEmitsDownUpToPeersOnly(t *testing.T) {
	n := newNet(t)
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	n.Flap(2)
	recvEvent(t, a, transport.KindDown, 2)
	recvEvent(t, a, transport.KindUp, 2)
	// The flapped node itself notices nothing and keeps working.
	if err := b.Send(1, []byte("alive")); err != nil {
		t.Fatalf("flapped node cannot send: %v", err)
	}
	it := recvMsg(t, a)
	if string(it.Payload) != "alive" {
		t.Fatalf("got %q", it.Payload)
	}
	n.Flap(99) // unknown node: no-op
}
