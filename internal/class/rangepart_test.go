package class

import (
	"math/rand"
	"testing"

	"paso/internal/tuple"
)

func mustRange(t *testing.T) *RangePartition {
	t.Helper()
	c, err := NewRangePartition("kv", 1, []int64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func kv(key int64) tuple.Tuple {
	return tuple.Make(tuple.String("kv"), tuple.Int(key), tuple.String("v"))
}

func TestRangePartitionValidation(t *testing.T) {
	if _, err := NewRangePartition("", 1, []int64{1}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRangePartition("kv", 0, []int64{1}); err == nil {
		t.Error("field 0 accepted")
	}
	if _, err := NewRangePartition("kv", 1, nil); err == nil {
		t.Error("no bounds accepted")
	}
	if _, err := NewRangePartition("kv", 1, []int64{5, 5}); err == nil {
		t.Error("duplicate bounds accepted")
	}
	// Unsorted bounds are sorted internally.
	c, err := NewRangePartition("kv", 1, []int64{30, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ClassOf(kv(15)); got != "kv/r1" {
		t.Errorf("unsorted-bounds ClassOf = %q", got)
	}
}

func TestRangePartitionClassOf(t *testing.T) {
	c := mustRange(t)
	tests := []struct {
		key  int64
		want ID
	}{
		{-5, "kv/r0"},
		{9, "kv/r0"},
		{10, "kv/r1"},
		{19, "kv/r1"},
		{20, "kv/r2"},
		{29, "kv/r2"},
		{30, "kv/r3"},
		{1000, "kv/r3"},
	}
	for _, tt := range tests {
		if got := c.ClassOf(kv(tt.key)); got != tt.want {
			t.Errorf("ClassOf(key=%d) = %q, want %q", tt.key, got, tt.want)
		}
	}
	// Wrong shapes go to the catch-all.
	if got := c.ClassOf(tuple.Make(tuple.String("other"), tuple.Int(5))); got != "kv/other" {
		t.Errorf("foreign tuple class = %q", got)
	}
	if got := c.ClassOf(tuple.Make(tuple.String("kv"))); got != "kv/other" {
		t.Errorf("short tuple class = %q", got)
	}
	if got := c.ClassOf(tuple.Make(tuple.String("kv"), tuple.String("notint"))); got != "kv/other" {
		t.Errorf("non-int key class = %q", got)
	}
}

func TestRangePartitionSearchListPruning(t *testing.T) {
	c := mustRange(t)
	// Exact key: one bucket.
	tp := tuple.NewTemplate(tuple.Eq(tuple.String("kv")), tuple.Eq(tuple.Int(25)), tuple.Any(tuple.KindString))
	if got := c.SearchList(tp); len(got) != 1 || got[0] != "kv/r2" {
		t.Errorf("exact SearchList = %v", got)
	}
	// Range straddling two buckets.
	tp = tuple.NewTemplate(tuple.Eq(tuple.String("kv")),
		tuple.Range(tuple.Int(15), tuple.Int(25)), tuple.Any(tuple.KindString))
	got := c.SearchList(tp)
	if len(got) != 2 || got[0] != "kv/r1" || got[1] != "kv/r2" {
		t.Errorf("range SearchList = %v", got)
	}
	// Wildcard key: all buckets, no catch-all (arity matches family).
	tp = tuple.NewTemplate(tuple.Eq(tuple.String("kv")), tuple.Any(tuple.KindInt), tuple.Any(tuple.KindString))
	if got := c.SearchList(tp); len(got) != 4 {
		t.Errorf("wildcard SearchList = %v", got)
	}
	// Foreign name: catch-all only.
	tp = tuple.NewTemplate(tuple.Eq(tuple.String("zzz")), tuple.Any(tuple.KindInt))
	if got := c.SearchList(tp); len(got) != 1 || got[0] != "kv/other" {
		t.Errorf("foreign SearchList = %v", got)
	}
}

// TestRangePartitionExhaustive: the §4.1 requirement — every matching
// tuple's class appears in the template's search list.
func TestRangePartitionExhaustive(t *testing.T) {
	c := mustRange(t)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		key := int64(r.Intn(60)) - 10
		tu := kv(key)
		var tp tuple.Template
		switch r.Intn(4) {
		case 0:
			tp = tuple.NewTemplate(tuple.Eq(tuple.String("kv")),
				tuple.Eq(tuple.Int(key)), tuple.Any(tuple.KindString))
		case 1:
			lo := key - int64(r.Intn(15))
			hi := key + int64(r.Intn(15))
			tp = tuple.NewTemplate(tuple.Eq(tuple.String("kv")),
				tuple.Range(tuple.Int(lo), tuple.Int(hi)), tuple.Any(tuple.KindString))
		case 2:
			tp = tuple.NewTemplate(tuple.Eq(tuple.String("kv")),
				tuple.Any(tuple.KindInt), tuple.Any(tuple.KindString))
		default:
			tp = tuple.NewTemplate(tuple.Any(tuple.KindString),
				tuple.Any(tuple.KindInt), tuple.Any(tuple.KindString))
		}
		if !tp.Matches(tu) {
			continue
		}
		cls := c.ClassOf(tu)
		found := false
		for _, id := range c.SearchList(tp) {
			if id == cls {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("class %q of key %d not in search list %v for %v", cls, key, c.SearchList(tp), tp)
		}
	}
}

func TestRangePartitionClasses(t *testing.T) {
	c := mustRange(t)
	got := c.Classes()
	if len(got) != 5 { // 4 buckets + catch-all
		t.Fatalf("Classes = %v", got)
	}
	seen := make(map[ID]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate class %q", id)
		}
		seen[id] = true
	}
}
