// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	E1–E3  Figure 1: msg-cost/time/work of insert, read (local and
//	       remote), and read&del, measured on the live system against the
//	       closed forms.
//	E4     Theorem 2: the Basic algorithm's competitive ratio vs the exact
//	       offline optimum, swept over λ and K.
//	E5     The q-cost extension (3+2λ/K).
//	E6     Theorem 3: doubling/halving under drifting class size.
//	E7     Theorem 4: support selection vs paging — the reduction, the
//	       adversarial separation, and LRF against baselines.
//	E8     §4.3 blocking-read strategies: busy-wait vs markers vs hybrid.
//	E9     §3.1/§4.2 crash recovery: init-phase cost vs class size.
//	E10    §5 end-to-end: adaptive vs static vs full replication on
//	       locality-shifting workloads.
//
// Each driver is deterministic (seeded) and returns a rendered table; the
// cmd/paso-bench binary prints them all, and the root bench_test.go wraps
// each driver in a testing.B benchmark.
package experiments

import (
	"paso/internal/stats"
)

// Experiment couples an id with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func() *stats.Table
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Figure 1 row: insert(o) costs", Run: E1InsertCost},
		{ID: "E2", Title: "Figure 1 rows: read(sc) local and remote", Run: E2ReadCost},
		{ID: "E3", Title: "Figure 1 row: read&del(sc) costs", Run: E3ReadDelCost},
		{ID: "E4", Title: "Theorem 2: Basic algorithm competitiveness", Run: E4BasicCompetitive},
		{ID: "E5", Title: "q-cost extension competitiveness", Run: E5QCostCompetitive},
		{ID: "E6", Title: "Theorem 3: doubling/halving competitiveness", Run: E6DoublingHalving},
		{ID: "E7", Title: "Theorem 4: support selection vs paging", Run: E7SupportSelection},
		{ID: "E8", Title: "Blocking-read strategies", Run: E8BlockingRead},
		{ID: "E9", Title: "Crash recovery and state transfer", Run: E9Recovery},
		{ID: "E10", Title: "Adaptive vs static replication, total work", Run: E10AdaptiveVsStatic},
		{ID: "E11", Title: "Ablation: live support maintenance under churn", Run: E11SupportMaintenance},
		{ID: "E12", Title: "Ablation: counter threshold K", Run: E12KSweep},
		{ID: "E13", Title: "Object classes: monolithic vs range-partitioned", Run: E13ClassPartitioning},
		{ID: "E14", Title: "Response time by policy (the open third measure)", Run: E14ResponseTime},
		{ID: "E15", Title: "Scalability: per-op cost vs ensemble size", Run: E15Scalability},
		{ID: "E16", Title: "System-level competitiveness (sum over machines)", Run: E16SystemCompetitive},
	}
}
