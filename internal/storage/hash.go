package storage

import (
	"container/list"

	"paso/internal/tuple"
)

// Hash is a dictionary store: fully ground templates (all fields OpEq) are
// answered with one hash probe (the paper's I(.)=Q(.)=D(.)=O(1) case used to
// normalize costs in §5). Non-ground templates fall back to an oldest-first
// linear scan, preserving correctness for general criteria.
type Hash struct {
	entries *list.List // of Entry, ascending seq (oldest first)
	byID    map[tuple.ID]*list.Element
	byKey   map[string][]*list.Element // FIFO buckets per content key
	stats   Stats
}

var _ Store = (*Hash)(nil)

// NewHash returns an empty hash store.
func NewHash() *Hash {
	return &Hash{
		entries: list.New(),
		byID:    make(map[tuple.ID]*list.Element),
		byKey:   make(map[string][]*list.Element),
	}
}

// contentKey is the identity-stripped encoding of the tuple.
func contentKey(t tuple.Tuple) string {
	return string(tuple.EncodeTuple(t.WithID(tuple.ID{})))
}

// groundKey builds the content key a tuple matching tp would have, if tp is
// fully ground (every matcher OpEq).
func groundKey(tp tuple.Template) (string, bool) {
	fields := make([]tuple.Value, tp.Arity())
	for i := 0; i < tp.Arity(); i++ {
		m := tp.Matcher(i)
		if m.Op != tuple.OpEq {
			return "", false
		}
		fields[i] = m.A
	}
	return contentKey(tuple.Make(fields...)), true
}

// Insert implements Store.
func (s *Hash) Insert(seq uint64, t tuple.Tuple) {
	el := s.entries.PushBack(Entry{Seq: seq, Tuple: t})
	s.byID[t.ID()] = el
	k := contentKey(t)
	s.byKey[k] = append(s.byKey[k], el)
	s.stats.Inserts++
	s.stats.InsertProbes++
}

// Read implements Store.
func (s *Hash) Read(tp tuple.Template) (tuple.Tuple, bool) {
	s.stats.Reads++
	if k, ok := groundKey(tp); ok {
		s.stats.ReadProbes++
		bucket := s.byKey[k]
		if len(bucket) == 0 {
			return tuple.Tuple{}, false
		}
		e, _ := bucket[0].Value.(Entry)
		return e.Tuple, true
	}
	for el := s.entries.Front(); el != nil; el = el.Next() {
		s.stats.ReadProbes++
		e, _ := el.Value.(Entry)
		if tp.Matches(e.Tuple) {
			return e.Tuple, true
		}
	}
	return tuple.Tuple{}, false
}

// Remove implements Store.
func (s *Hash) Remove(tp tuple.Template) (tuple.Tuple, bool) {
	s.stats.Removes++
	if k, ok := groundKey(tp); ok {
		s.stats.RemoveProbes++
		bucket := s.byKey[k]
		if len(bucket) == 0 {
			return tuple.Tuple{}, false
		}
		el := bucket[0]
		e, _ := el.Value.(Entry)
		s.unlink(el, e, k)
		return e.Tuple, true
	}
	for el := s.entries.Front(); el != nil; el = el.Next() {
		s.stats.RemoveProbes++
		e, _ := el.Value.(Entry)
		if tp.Matches(e.Tuple) {
			s.unlink(el, e, contentKey(e.Tuple))
			return e.Tuple, true
		}
	}
	return tuple.Tuple{}, false
}

// unlink removes el from the ordered list, the id index, and its key bucket.
func (s *Hash) unlink(el *list.Element, e Entry, key string) {
	s.entries.Remove(el)
	delete(s.byID, e.Tuple.ID())
	bucket := s.byKey[key]
	for i, b := range bucket {
		if b == el {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.byKey, key)
	} else {
		s.byKey[key] = bucket
	}
}

// RemoveByID implements Store.
func (s *Hash) RemoveByID(id tuple.ID) bool {
	el, ok := s.byID[id]
	if !ok {
		return false
	}
	e, _ := el.Value.(Entry)
	s.unlink(el, e, contentKey(e.Tuple))
	return true
}

// Len implements Store.
func (s *Hash) Len() int { return s.entries.Len() }

// Snapshot implements Store.
func (s *Hash) Snapshot() []Entry {
	out := make([]Entry, 0, s.entries.Len())
	for el := s.entries.Front(); el != nil; el = el.Next() {
		e, _ := el.Value.(Entry)
		out = append(out, e)
	}
	return out
}

// Restore implements Store.
func (s *Hash) Restore(entries []Entry) {
	s.entries.Init()
	s.byID = make(map[tuple.ID]*list.Element, len(entries))
	s.byKey = make(map[string][]*list.Element, len(entries))
	for _, e := range entries {
		el := s.entries.PushBack(e)
		s.byID[e.Tuple.ID()] = el
		k := contentKey(e.Tuple)
		s.byKey[k] = append(s.byKey[k], el)
	}
}

// Stats implements Store.
func (s *Hash) Stats() Stats { return s.stats }
