package flight

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"paso/internal/obs"
)

// testRecorder wires a sampler, audit trail, and recorder over one obs
// instance with deterministic clocks and profiles off.
func testRecorder(t *testing.T, opts RecorderOptions) (*obs.Obs, *Sampler, *Recorder, *stepClock) {
	t.Helper()
	o := obs.Nop()
	clk := newStepClock(time.Second)
	s := NewSampler(o.Reg(), SamplerOptions{Interval: time.Second, Retention: time.Minute, Now: clk.Now})
	opts.Dir = t.TempDir()
	opts.Obs = o
	opts.Sampler = s
	opts.NoProfiles = true
	opts.Now = clk.Now
	return o, s, NewRecorder(opts), clk
}

func TestRecorderRuleIncreaseFires(t *testing.T) {
	o, s, r, _ := testRecorder(t, RecorderOptions{MinInterval: time.Nanosecond})
	stalls := o.Counter("transport.send.stalls")

	s.SampleNow() // baseline frame, nothing moves
	stalls.Inc()
	s.SampleNow() // stall episode: send-stall rule must fire

	bundles, err := ListBundles(r.opts.Dir)
	if err != nil || len(bundles) != 1 {
		t.Fatalf("bundles = %v (err %v), want exactly 1", bundles, err)
	}
	if bundles[0].Trigger != "send-stall" {
		t.Fatalf("trigger = %q, want send-stall", bundles[0].Trigger)
	}
	if o.Counter("flight.bundles.written").Value() != 1 {
		t.Fatal("flight.bundles.written not incremented")
	}
}

func TestRecorderRuleAboveIsEdgeTriggered(t *testing.T) {
	o, s, r, _ := testRecorder(t, RecorderOptions{MinInterval: time.Nanosecond})
	backlog := o.Gauge("vsync.coord.backlog")

	backlog.Set(2000) // above the default 1024 HWM
	s.SampleNow()     // crossing: fires
	s.SampleNow()     // still above: must NOT re-fire
	backlog.Set(10)
	s.SampleNow() // cleared: re-arms
	backlog.Set(3000)
	s.SampleNow() // second crossing: fires again

	bundles, err := ListBundles(r.opts.Dir)
	if err != nil || len(bundles) != 2 {
		t.Fatalf("bundles = %d (err %v), want 2 (edge-triggered)", len(bundles), err)
	}
}

func TestRecorderRateLimit(t *testing.T) {
	o, s, r, _ := testRecorder(t, RecorderOptions{MinInterval: time.Hour})
	stalls := o.Counter("transport.send.stalls")

	s.SampleNow()
	stalls.Inc()
	s.SampleNow() // fires
	stalls.Inc()
	s.SampleNow() // 1s later: suppressed by the 1h MinInterval

	bundles, _ := ListBundles(r.opts.Dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want 1 (second fire rate-limited)", len(bundles))
	}
	if o.Counter("flight.triggers.suppressed").Value() != 1 {
		t.Fatal("suppressed trigger not counted")
	}
}

func TestRecorderCaptureBundleContents(t *testing.T) {
	o, s, r, _ := testRecorder(t, RecorderOptions{
		Audit:     NewAuditTrail(0),
		Placement: func() any { return map[string]int{"wg/a/0": 1} },
	})
	r.opts.Audit.SetNow(r.opts.Now)
	r.opts.Audit.RecordOwnership("wg/a/0", 1, 1, OwnFresh, 0)
	o.Emit("test-event", obs.KV("k", "v"))
	o.Counter("some.counter").Add(3)
	s.SampleNow()

	id, err := r.Trigger("manual", "test capture")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}

	m, err := LoadManifest(r.opts.Dir, id)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	want := []string{"events.json", "spans.json", "timeseries.json", "placement.json"}
	if len(m.Files) != len(want) {
		t.Fatalf("files = %v, want %v (NoProfiles)", m.Files, want)
	}
	for i, f := range want {
		if m.Files[i] != f {
			t.Fatalf("files = %v, want %v", m.Files, want)
		}
		if _, err := os.Stat(filepath.Join(r.opts.Dir, id, f)); err != nil {
			t.Fatalf("bundle file %s missing: %v", f, err)
		}
	}
	if m.Events < 1 || m.Series < 1 || len(m.Ownership) != 1 {
		t.Fatalf("manifest counts events=%d series=%d ownership=%d, want all nonzero",
			m.Events, m.Series, len(m.Ownership))
	}
	if m.Fingerprint == "" {
		t.Fatal("manifest has no fingerprint")
	}
	// The .tmp staging directory must be gone after the atomic rename.
	if _, err := os.Stat(filepath.Join(r.opts.Dir, id+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("staging directory survived capture: %v", err)
	}
}

func TestRecorderEvictsOldBundles(t *testing.T) {
	_, _, r, _ := testRecorder(t, RecorderOptions{MaxBundles: 2})
	for i := 0; i < 4; i++ {
		if _, err := r.Trigger("manual", "evict test"); err != nil {
			t.Fatalf("Trigger %d: %v", i, err)
		}
	}
	bundles, err := ListBundles(r.opts.Dir)
	if err != nil || len(bundles) != 2 {
		t.Fatalf("bundles = %d (err %v), want 2 after eviction", len(bundles), err)
	}
	if bundles[0].ID != "b0003-manual" || bundles[1].ID != "b0004-manual" {
		t.Fatalf("survivors = %s, %s; want the two newest", bundles[0].ID, bundles[1].ID)
	}
}

func TestRecorderHandlerServesOnlyBundleFiles(t *testing.T) {
	_, _, r, _ := testRecorder(t, RecorderOptions{})
	id, err := r.Trigger("manual", "handler test")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(q string) int {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(""); code != http.StatusOK {
		t.Fatalf("index status = %d", code)
	}
	if code := get("?id=" + id); code != http.StatusOK {
		t.Fatalf("manifest status = %d", code)
	}
	if code := get("?id=" + id + "&file=events.json"); code != http.StatusOK {
		t.Fatalf("file status = %d", code)
	}
	// sanitizeID guards the write side; the read side must refuse path
	// separators in the id and names the manifest does not list.
	if code := get("?id=..%2Fsecret"); code != http.StatusBadRequest {
		t.Fatalf("traversal id status = %d, want 400", code)
	}
	if code := get("?id=" + id + "&file=..%2F..%2Fetc%2Fpasswd"); code != http.StatusNotFound {
		t.Fatalf("unlisted file status = %d, want 404", code)
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"coord-backlog": "coord-backlog",
		"a/b c":         "a_b_c",
		"":              "manual",
		"UPPER_09":      "UPPER_09",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}
