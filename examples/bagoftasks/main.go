// Bag-of-tasks: the adaptive-parallel workload the paper's introduction
// motivates. A master drops work tuples into the space; workers on other
// machines repeatedly Take a task, compute, and Insert a result. Workers
// are mutually anonymous — when one crashes mid-computation its unfinished
// task is re-issued by the master, and the replacement worker picks it up
// with no coordination (Kambhatla & Walpole's argument for tuple spaces as
// a fault-tolerant substrate, paper §1).
//
// The bag computes a trivially verifiable job: summing the squares of
// 1..N, sharded into tasks.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"paso"
)

const (
	machines = 6
	workers  = 4 // machines 3..6 run workers
	nTasks   = 40
	shard    = 25 // numbers per task
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	space, err := paso.New(paso.Options{
		Machines:   machines,
		Lambda:     2,
		TupleNames: []string{"task", "result"},
		Policy:     paso.PolicyBasic,
		K:          8,
	})
	if err != nil {
		return err
	}
	defer space.Close()

	// Master (machine 1) drops the bag of tasks.
	master := space.On(1)
	for i := 0; i < nTasks; i++ {
		lo := int64(i*shard + 1)
		hi := int64((i + 1) * shard)
		if _, err := master.Insert(paso.Str("task"), paso.I(int64(i)), paso.I(lo), paso.I(hi)); err != nil {
			return err
		}
	}
	fmt.Printf("master: %d tasks in the bag\n", nTasks)

	// Workers: take any task, sum squares of the range, insert the result.
	taskTpl := paso.MatchName("task", paso.AnyInt(), paso.AnyInt(), paso.AnyInt())
	var wg sync.WaitGroup
	var processed [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			machine := w + 3
			for {
				h := space.On(machine)
				if h == nil {
					return // this worker's machine crashed
				}
				task, err := h.TakeWait(taskTpl, 300*time.Millisecond)
				if err != nil {
					return // bag drained
				}
				id := task.Field(1).MustInt()
				lo, hi := task.Field(2).MustInt(), task.Field(3).MustInt()
				var sum int64
				for n := lo; n <= hi; n++ {
					sum += n * n
				}
				if _, err := h.Insert(paso.Str("result"), paso.I(id), paso.I(sum)); err != nil {
					// The insert may have been lost with the machine;
					// the master's re-issue pass will cover it.
					return
				}
				processed[w]++
			}
		}(w)
	}

	// Chaos: crash one worker machine mid-run and bring it back.
	time.Sleep(5 * time.Millisecond)
	fmt.Println("chaos: crashing machine 4 mid-computation")
	space.Crash(4)
	time.Sleep(20 * time.Millisecond)
	if err := space.Restart(4); err != nil {
		return err
	}
	fmt.Println("chaos: machine 4 restarted (its memory was wiped and re-transferred)")
	wg.Wait()

	// Master gathers results, re-issuing any tasks lost in the crash
	// window (a worker may have taken a task and died before answering).
	resTpl := paso.MatchName("result", paso.AnyInt(), paso.AnyInt())
	results := make(map[int64]int64, nTasks)
	for len(results) < nTasks {
		r, err := master.TakeWait(resTpl, 200*time.Millisecond)
		if err != nil {
			// Drained without completing: re-issue missing tasks.
			reissued := 0
			for i := 0; i < nTasks; i++ {
				if _, done := results[int64(i)]; done {
					continue
				}
				lo := int64(i*shard + 1)
				hi := int64((i + 1) * shard)
				if _, err := master.Insert(paso.Str("task"), paso.I(int64(i)), paso.I(lo), paso.I(hi)); err != nil {
					return err
				}
				reissued++
			}
			fmt.Printf("master: re-issued %d lost tasks\n", reissued)
			// One surviving worker finishes the stragglers.
			h := space.On(3)
			for {
				task, err := h.TakeWait(taskTpl, 100*time.Millisecond)
				if err != nil {
					break
				}
				id := task.Field(1).MustInt()
				lo, hi := task.Field(2).MustInt(), task.Field(3).MustInt()
				var sum int64
				for n := lo; n <= hi; n++ {
					sum += n * n
				}
				if _, err := h.Insert(paso.Str("result"), paso.I(id), paso.I(sum)); err != nil {
					return err
				}
			}
			continue
		}
		// Duplicate results are possible after re-issue; last write wins
		// (they are equal anyway).
		results[r.Field(1).MustInt()] = r.Field(2).MustInt()
	}

	var total int64
	for _, s := range results {
		total += s
	}
	n := int64(nTasks * shard)
	want := n * (n + 1) * (2*n + 1) / 6
	fmt.Printf("sum of squares 1..%d = %d (want %d, match=%v)\n", n, total, want, total == want)
	for w := 0; w < workers; w++ {
		fmt.Printf("worker on machine %d processed %d tasks\n", w+3, processed[w])
	}
	if total != want {
		return fmt.Errorf("wrong total")
	}
	return nil
}
