package experiments

import (
	"paso/internal/adaptive"
	"paso/internal/opt"
	"paso/internal/stats"
	"paso/internal/workload"
)

// ratioRow computes online/OPT for one policy on one sequence.
func ratioRow(p adaptive.Policy, events []opt.Event, slack float64) (online, optimum, ratio float64) {
	res := opt.Run(p, events)
	sched := opt.Optimal(events)
	return res.Cost, sched.Cost, opt.Ratio(res.Cost, sched.Cost, slack)
}

// E4BasicCompetitive sweeps the Basic algorithm over λ and K on
// adversarial, random, and phased sequences, reporting the measured
// competitive ratio against the exact DP optimum and the Theorem 2 bound
// 3+λ/K.
func E4BasicCompetitive() *stats.Table {
	t := stats.NewTable("E4", "Basic algorithm: measured ratio vs Theorem 2 bound 3+λ/K",
		"lambda", "K", "sequence", "online", "opt", "ratio", "bound")
	for _, lambda := range []int{1, 2, 4} {
		for _, k := range []int{4, 16, 64} {
			bound := 3 + float64(lambda)/float64(k)
			seqs := []struct {
				name   string
				events []opt.Event
			}{
				{"adversarial", workload.CounterTorture(60, lambda+1, k, 1)},
				{"random50", workload.RandomMix(workload.MixParams{
					Events: 6000, ReadFrac: 0.5, RgSize: lambda + 1, JoinCost: k, QCost: 1, Seed: 21,
				})},
				{"random90", workload.RandomMix(workload.MixParams{
					Events: 6000, ReadFrac: 0.9, RgSize: lambda + 1, JoinCost: k, QCost: 1, Seed: 22,
				})},
				{"phased", workload.Phased(25, 2*k, 2*k, lambda+1, k, 1)},
			}
			for _, sq := range seqs {
				p, err := adaptive.NewBasic(k)
				if err != nil {
					t.AddNote("%v", err)
					continue
				}
				online, optimum, ratio := ratioRow(p, sq.events, float64(2*k))
				t.AddRow(stats.D(lambda), stats.D(k), sq.name,
					stats.F(online), stats.F(optimum), stats.F(ratio), stats.F(bound))
				if sq.name == "adversarial" {
					// Extension row: the randomized threshold defuses the
					// deterministic adversary (expected cost over 10 draws).
					var total float64
					const trials = 10
					for seed := int64(0); seed < trials; seed++ {
						rp, rerr := adaptive.NewRandomized(k, seed)
						if rerr != nil {
							continue
						}
						total += opt.Run(rp, sq.events).Cost
					}
					mean := total / trials
					t.AddRow(stats.D(lambda), stats.D(k), "adversarial(rand)",
						stats.F(mean), stats.F(optimum),
						stats.F(opt.Ratio(mean, optimum, float64(2*k))), stats.F(bound))
				}
			}
		}
	}
	t.AddNote("ratio = (online − 2K)/OPT; the additive constant absorbs edge effects as the theorem's B")
	t.AddNote("adversarial rows approach 3 (the dominant constant); benign rows sit far below the bound")
	return t
}

// E5QCostCompetitive repeats E4 for the q-cost extension (tree/list
// stores where queries cost q), bound 3+2λ/K.
func E5QCostCompetitive() *stats.Table {
	t := stats.NewTable("E5", "q-cost extension: measured ratio vs bound 3+2λ/K",
		"lambda", "K", "q", "sequence", "online", "opt", "ratio", "bound")
	for _, lambda := range []int{1, 2} {
		for _, k := range []int{12, 48} {
			for _, q := range []int{2, 4} {
				bound := 3 + 2*float64(lambda)/float64(k)
				seqs := []struct {
					name   string
					events []opt.Event
				}{
					{"adversarial", workload.CounterTorture(60, lambda+1, k, q)},
					{"random60", workload.RandomMix(workload.MixParams{
						Events: 6000, ReadFrac: 0.6, RgSize: lambda + 1, JoinCost: k, QCost: q, Seed: 31,
					})},
				}
				for _, sq := range seqs {
					p, err := adaptive.NewQCost(k, q)
					if err != nil {
						t.AddNote("%v", err)
						continue
					}
					online, optimum, ratio := ratioRow(p, sq.events, float64(3*k))
					t.AddRow(stats.D(lambda), stats.D(k), stats.D(q), sq.name,
						stats.F(online), stats.F(optimum), stats.F(ratio), stats.F(bound))
				}
			}
		}
	}
	return t
}

// E6DoublingHalving exercises Theorem 3: the class size (and so the join
// cost K) doubles and halves across phases; the doubling/halving policy is
// compared with plain Basic (frozen at K0) against the exact time-varying
// optimum. Bound: 6+2λ/K.
func E6DoublingHalving() *stats.Table {
	t := stats.NewTable("E6", "doubling/halving under drifting class size vs Theorem 3 bound",
		"lambda", "K0", "seed", "policy", "online", "opt", "ratio", "bound")
	for _, lambda := range []int{1, 2} {
		k0 := 8
		bound := 6 + 2*float64(lambda)/float64(k0)
		for seed := int64(0); seed < 3; seed++ {
			events := workload.DriftingSize(workload.DriftParams{
				Phases: 40, PerPhase: 250, ReadFrac: 0.6,
				RgSize: lambda + 1, BaseK: k0, MaxK: 128, QCost: 1, Seed: seed,
			})
			dh, err := adaptive.NewDoublingHalving(k0)
			if err != nil {
				t.AddNote("%v", err)
				continue
			}
			online, optimum, ratio := ratioRow(dh, events, float64(4*128))
			t.AddRow(stats.D(lambda), stats.D(k0), stats.D(int(seed)), dh.Name(),
				stats.F(online), stats.F(optimum), stats.F(ratio), stats.F(bound))

			basic, err := adaptive.NewBasic(k0)
			if err != nil {
				t.AddNote("%v", err)
				continue
			}
			online, optimum, ratio = ratioRow(basic, events, float64(4*128))
			t.AddRow(stats.D(lambda), stats.D(k0), stats.D(int(seed)), "basic(frozen K)",
				stats.F(online), stats.F(optimum), stats.F(ratio), "-")
		}
	}
	t.AddNote("the frozen-K baseline shows why tracking ℓ matters: its ratio drifts with the size")
	return t
}
