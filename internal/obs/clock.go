package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Coarse clock: a ticker-advanced wall clock for hot-path stage
// timestamps. The PR 7 saturation profile showed ~8% of one-core CPU in
// time.Now, almost all of it from the per-event stage-latency
// instrumentation (client-queue enqueue, order staging, delivery) — sites
// that measure queue crossings in the 0.5–50ms range, where a sub-
// millisecond-resolution cached clock is indistinguishable from the real
// one. CoarseNow trades resolution for cost: a single atomic load instead
// of a vDSO call, advanced every coarseTick by one background goroutine.
//
// Precision-sensitive sites must NOT use it: the open-loop load plane's
// coordinated-omission-safe intended-start latencies (internal/load) and
// the in-thread microsecond stages (encode, socket write, store apply)
// keep calling time.Now, so sweep accuracy is unchanged — the coarse
// clock's error (≤ coarseTick, well under the histogram's own 4.4%
// bucket error at queue-crossing scales) lands only on stages measured
// in milliseconds.
const coarseTick = 250 * time.Microsecond

var (
	coarseOnce  sync.Once
	coarseNanos atomic.Int64
)

// coarseStart launches the advancing goroutine on first use, so processes
// that never touch the coarse clock (tests, pasoctl) pay nothing.
func coarseStart() {
	coarseNanos.Store(time.Now().UnixNano())
	go func() {
		for {
			time.Sleep(coarseTick)
			coarseNanos.Store(time.Now().UnixNano())
		}
	}()
}

// CoarseNow returns the cached wall clock, at most coarseTick stale. The
// returned Time carries no monotonic reading; measure elapsed time against
// it with CoarseSince (or Sub against another CoarseNow), never by mixing
// with monotonic time.Now values.
func CoarseNow() time.Time {
	coarseOnce.Do(coarseStart)
	return time.Unix(0, coarseNanos.Load())
}

// CoarseSince returns the elapsed wall time since t per the coarse clock.
// Staleness can make the result negative by up to coarseTick when t was
// just taken from the real clock; callers observing into histograms can
// pass it through unchanged — bucket 0 absorbs non-positive values.
func CoarseSince(t time.Time) time.Duration {
	coarseOnce.Do(coarseStart)
	return time.Duration(coarseNanos.Load() - t.UnixNano())
}
