package core

import (
	"testing"

	"paso/internal/adaptive"
	"paso/internal/class"
	"paso/internal/obs"
	"paso/internal/opt"
	"paso/internal/transport"
	"paso/internal/workload"
)

// driveAuditor feeds a sequence through a policy and auditor exactly as the
// machine hooks do (policyRead / onUpdate): reads charged before a join
// takes effect, updates observed only while a member, leaves free.
func driveAuditor(p adaptive.Policy, a *ratioAuditor, events []opt.Event) {
	member := false
	for _, raw := range events {
		e := raw.Normalized()
		if ca, ok := p.(adaptive.CostAware); ok {
			ca.ObserveJoinCost(e.JoinCost)
		}
		switch e.Kind {
		case opt.Read:
			d := p.LocalRead(member, e.RgSize)
			trigger := d == adaptive.Join && !member
			a.read(member, e.RgSize, e.JoinCost, trigger)
			if trigger {
				member = true
			}
		case opt.Update:
			if member {
				d := p.Update(true)
				trigger := d == adaptive.Leave
				a.update(e.JoinCost, trigger)
				if trigger {
					member = false
				}
			}
		}
	}
}

// TestAuditorBasicWithinTheorem2 replays Theorem 2 workloads through the
// live auditor with the Basic(K) policy and asserts the exported ratio
// stays within 3 + λ/K — the same bound internal/opt proves for its own
// replay driver, now holding on the accounting the gauges are built from.
func TestAuditorBasicWithinTheorem2(t *testing.T) {
	for _, lambda := range []int{1, 2} {
		for _, k := range []int{2, 4, 8} {
			bound := 3 + float64(lambda)/float64(k)
			sequences := [][]opt.Event{
				workload.CounterTorture(30, lambda+1, k, 1),
				workload.RandomMix(workload.MixParams{
					Events: 3000, ReadFrac: 0.5, RgSize: lambda + 1, JoinCost: k, QCost: 1, Seed: 7,
				}),
				workload.RandomMix(workload.MixParams{
					Events: 3000, ReadFrac: 0.9, RgSize: lambda + 1, JoinCost: k, QCost: 1, Seed: 8,
				}),
				workload.Phased(20, k*2, k*2, lambda+1, k, 1),
			}
			for si, events := range sequences {
				p, err := adaptive.NewBasic(k)
				if err != nil {
					t.Fatal(err)
				}
				a := &ratioAuditor{}
				driveAuditor(p, a, events)
				r, _, ok := a.ratio()
				if !ok {
					t.Fatalf("λ=%d K=%d seq %d: no ratio", lambda, k, si)
				}
				if r > bound+1e-9 {
					t.Errorf("λ=%d K=%d seq %d: audited ratio %.3f > bound %.3f (online=%v joins=%d)",
						lambda, k, si, r, bound, a.online, a.joins)
				}
			}
		}
	}
}

// TestAuditorDoublingWithinTheorem3 does the same for the cost-aware
// doubling/halving policy under drifting class sizes: ratio ≤ 6 + 2λ/K.
func TestAuditorDoublingWithinTheorem3(t *testing.T) {
	lambda, k0 := 1, 8
	bound := 6 + 2*float64(lambda)/float64(k0)
	for seed := int64(0); seed < 5; seed++ {
		events := workload.DriftingSize(workload.DriftParams{
			Phases: 30, PerPhase: 200, ReadFrac: 0.6,
			RgSize: lambda + 1, BaseK: k0, MaxK: 64, QCost: 1, Seed: seed,
		})
		p, err := adaptive.NewDoublingHalving(k0)
		if err != nil {
			t.Fatal(err)
		}
		a := &ratioAuditor{costAware: true}
		driveAuditor(p, a, events)
		r, _, ok := a.ratio()
		if !ok {
			t.Fatalf("seed %d: no ratio", seed)
		}
		if r > bound+1e-9 {
			t.Errorf("seed %d: audited ratio %.3f > bound %.3f (online=%v)", seed, r, bound, a.online)
		}
	}
}

// TestAuditorWindowReset fills the window past capacity and checks the
// accounting restarts instead of growing without bound.
func TestAuditorWindowReset(t *testing.T) {
	a := &ratioAuditor{}
	p, _ := adaptive.NewBasic(4)
	events := workload.RandomMix(workload.MixParams{
		Events: auditWindow + 100, ReadFrac: 0.7, RgSize: 2, JoinCost: 4, QCost: 1, Seed: 1,
	})
	driveAuditor(p, a, events)
	if a.resets != 1 {
		t.Fatalf("resets = %d, want 1", a.resets)
	}
	if len(a.events) > auditWindow {
		t.Fatalf("window grew to %d", len(a.events))
	}
	if _, _, ok := a.ratio(); !ok {
		t.Fatal("no ratio after reset")
	}
}

// TestAuditLiveCluster drives a real in-process cluster and checks the
// whole surface: a non-basic outsider machine accumulates audit events
// from its reads, AuditRatio honors Theorem 2, and the per-class gauges
// come out of the obs derived-metrics scrape.
func TestAuditLiveCluster(t *testing.T) {
	const k = 4
	o := obs.New(obs.Options{})
	cfg := testConfig()
	cfg.NewPolicy = BasicPolicyFactory(k)
	cfg.Obs = o
	c := newTestCluster(t, cfg, 4)

	cls := class.ID("task/2")
	var outsider transport.NodeID
	for id := transport.NodeID(1); id <= 4; id++ {
		m := c.Machine(id)
		if !m.MemberOf(cls) && !m.IsBasic(cls) {
			outsider = id
			break
		}
	}
	if outsider == 0 {
		t.Fatal("no outsider for task/2")
	}
	m := c.Machine(outsider)

	// A read-heavy phase: enough non-member reads to trip the counter.
	if _, err := c.Machine(1).Insert(taskTuple(7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*k; i++ {
		if _, ok, err := m.Read(taskTpl()); err != nil || !ok {
			t.Fatalf("read %d: %v ok=%v", i, err, ok)
		}
	}
	// An update-heavy phase (observed if the policy joined above).
	for i := int64(0); i < 4*k; i++ {
		if _, err := c.Machine(1).Insert(taskTuple(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	// policyRead runs synchronously inside Read, so the audit is already
	// populated by the time the reads return.
	r, ok := m.AuditRatio(cls)
	if !ok {
		t.Fatal("outsider accumulated no audit events")
	}
	lambda := cfg.Lambda
	if bound := 3 + float64(lambda)/float64(k); r > bound+1e-9 {
		t.Fatalf("live ratio %.3f > bound %.3f", r, bound)
	}
	// A basic-support machine must not be audited (the §5.1 game is for
	// M ∉ B(C)).
	for id := transport.NodeID(1); id <= 4; id++ {
		if c.Machine(id).IsBasic(cls) {
			if _, ok := c.Machine(id).AuditRatio(cls); ok {
				t.Fatalf("basic machine %d has an audit", id)
			}
		}
	}
	derived := o.Collect()
	if _, ok := derived["adaptive.ratio."+string(cls)]; !ok {
		t.Fatalf("adaptive.ratio gauge missing from derived metrics: %v", derived)
	}
	if _, ok := derived["adaptive.online."+string(cls)]; !ok {
		t.Fatalf("adaptive.online gauge missing: %v", derived)
	}
}
