package vsync

import (
	"fmt"
	"testing"

	"paso/internal/cost"
	"paso/internal/simnet"
	"paso/internal/transport"
)

// benchGroup spins up n nodes all joined to one group.
func benchGroup(b *testing.B, n int) []*Node {
	b.Helper()
	net := simnet.New(cost.DefaultModel())
	nodes := make([]*Node, 0, n)
	for i := 1; i <= n; i++ {
		ep, err := net.Join(transport.NodeID(i))
		if err != nil {
			b.Fatal(err)
		}
		nd := NewNode(ep, newTestHandler())
		nodes = append(nodes, nd)
	}
	b.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	for _, nd := range nodes {
		if err := nd.Join("bench"); err != nil {
			b.Fatal(err)
		}
	}
	return nodes
}

func benchGcast(b *testing.B, n int) {
	nodes := benchGroup(b, n)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nodes[n-1].Gcast("bench", payload)
		if err != nil || res.Fail {
			b.Fatal(err, res.Fail)
		}
	}
}

func BenchmarkGcastGroup2(b *testing.B) { benchGcast(b, 2) }
func BenchmarkGcastGroup4(b *testing.B) { benchGcast(b, 4) }
func BenchmarkGcastGroup8(b *testing.B) { benchGcast(b, 8) }

// BenchmarkGcastPipelined measures throughput with 8 concurrent issuers.
func BenchmarkGcastPipelined(b *testing.B) {
	nodes := benchGroup(b, 4)
	payload := make([]byte, 64)
	b.ResetTimer()
	b.SetParallelism(2)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := nodes[0].Gcast("bench", payload)
			if err != nil || res.Fail {
				b.Fatal(err, res.Fail)
			}
		}
	})
}

// benchWire is the envelope the codec benchmarks serialize: a traced
// small-tuple gcast, the hot message shape on the ordering path.
func benchWire() *wire {
	return &wire{
		Type: tCastReq, Group: "wg.job/3", ReqID: 0x9e3779b97f4a7c15,
		Origin: 3, Subject: 3, Trace: 0xCAFE, Span: 0xBEEF,
		Payload: []byte("0123456789abcdef0123456789abcdef0123456789abcdef"),
	}
}

// BenchmarkWireEncode measures the steady-state encode path as the
// transport exercises it: encode into a pooled buffer, recycle after the
// write. Gob baseline (recorded before its removal, same envelope):
// 5748 ns/op, 2288 B/op, 23 allocs/op.
func BenchmarkWireEncode(b *testing.B) {
	w := benchWire()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := encodeWire(w)
		b.SetBytes(int64(len(buf)))
		transport.PutBuf(buf)
	}
}

// BenchmarkWireDecode measures the receive path with a warmed decoder, as
// on a node's loop: the group name is interned, payload aliases the frame.
// Gob baseline: 29917 ns/op, 13312 B/op, 317 allocs/op.
func BenchmarkWireDecode(b *testing.B) {
	enc := encodeWire(benchWire())
	var dec wireDecoder
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeBatch8 covers the coalesced frame the outbox builds
// under load: eight tOrdered envelopes sharing one header.
func BenchmarkWireEncodeBatch8(b *testing.B) {
	batch := &wire{Type: tBatch}
	for i := 0; i < 8; i++ {
		batch.Batch = append(batch.Batch, wire{
			Type: tOrdered, Group: "wg.job/3", Seq: uint64(100 + i), Event: evData,
			ReqID: uint64(300 + i), Origin: 3, Payload: []byte("0123456789abcdef"),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := encodeWire(batch)
		b.SetBytes(int64(len(buf)))
		transport.PutBuf(buf)
	}
}

// BenchmarkJoinWithState measures g-join cost as a function of group state
// size (the O(ℓ) transfer of §5).
func BenchmarkJoinWithState(b *testing.B) {
	for _, entries := range []int{10, 1000} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			nodes := benchGroup(b, 2)
			for i := 0; i < entries; i++ {
				if _, err := nodes[0].Gcast("bench", []byte(fmt.Sprintf("e%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nodes[1].Leave("bench"); err != nil {
					b.Fatal(err)
				}
				if err := nodes[1].Join("bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
