package faults

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"paso/internal/core"
	"paso/internal/cost"
	"paso/internal/obs"
	"paso/internal/obs/flight"
	"paso/internal/semantics"
	"paso/internal/transport"
	"paso/internal/tuple"
)

// RunOptions tunes a scenario execution.
type RunOptions struct {
	// Out receives the deterministic report: banner, one line per step
	// with its outcome, the semantics/checker summaries, and the verdict.
	// On a passing run this output is bit-identical across executions of
	// the same scenario (FAULTS.md §5). Nil discards.
	Out io.Writer
	// Obs receives harness events: fault-injected, invariant-violation.
	// This is wall-clock execution-order data, NOT part of the
	// deterministic surface. Nil discards.
	Obs *obs.Obs
	// SettleTimeout bounds every settle poll (default 30s); exceeding it
	// is an invariant violation.
	SettleTimeout time.Duration
	// AwaitTimeout bounds OpAwait (default 60s); an async insert still
	// stalled that long after its loss window closed is a liveness
	// violation.
	AwaitTimeout time.Duration
	// Trace turns on cross-machine operation tracing for the scenario's
	// cluster and snapshots every probe leg's assembled trace into
	// Result.ProbeTraces immediately after the leg runs — so a later
	// crash cannot erase it, and spans lost TO a fault show up as
	// explicit gap annotations rather than silently missing. Trace
	// timelines are wall-clock data and are NOT part of the deterministic
	// Out report.
	Trace bool
	// FlightDir arms a flight recorder over the run: every machine shares
	// one Obs (as with Trace), a sampler snapshots the merged registry,
	// the default trigger rules watch it, and when the scenario completes
	// a final bundle is force-captured — so every chaos run leaves at
	// least one postmortem artifact, with the placement audit trail wired
	// through core.Config.Audit. Bundle IDs land in Result.Bundles.
	// Wall-clock data, excluded from the deterministic Out report.
	FlightDir string
	// FlightInterval overrides the flight sampler interval (default 50ms).
	FlightInterval time.Duration
	// Leases enables the leased-read fast path for the scenario's cluster
	// (core.Config.LeasedReads): probe reads from machines outside the
	// probe class's support go point-to-point to one member under the view
	// epoch, falling back to the ordered gcast on any fence or timeout.
	// Every semantics and invariant check runs unchanged — the lease must
	// be invisible to them.
	Leases bool
}

// ProbeTrace is one probe leg's assembled cross-machine trace.
type ProbeTrace struct {
	// Probe is the 1-based probe cycle the leg belongs to.
	Probe int
	// Node is the probing machine.
	Node transport.NodeID
	// Op is the leg's root span name (op.insert, op.read, op.read&del).
	Op string
	// Trace is the assembled, gap-annotated timeline.
	Trace obs.OpTrace
}

// Result is a scenario execution's outcome.
type Result struct {
	Scenario string
	Seed     uint64
	Probes   int    // asserted probe cycles run (including the warmup)
	Checks   uint64 // view-change invariant checks performed
	// Faults is the executed fault log in canonical (from, to, index)
	// order. Bit-stable only for scenarios without crash/cut races (see
	// Plan); excluded from the Out report.
	Faults []FaultEvent
	// Records is the semantics history length checked.
	Records int
	// Violations aggregates step assertions, checker findings, settle
	// timeouts, and semantics.Check results. Empty means the run passed.
	Violations []string
	// ProbeTraces holds every probe leg's assembled trace when
	// RunOptions.Trace was set (wall-clock data, excluded from Out).
	ProbeTraces []ProbeTrace
	// Bundles lists the flight-recorder bundles present in FlightDir after
	// the run (set only when RunOptions.FlightDir was armed; wall-clock
	// data, excluded from Out).
	Bundles []string
}

// OK reports whether the run passed.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// quiescePause is how long the runner waits for in-flight protocol
// stragglers to drain before opening or after closing a rule window, so
// the per-link frame indices a window covers are run-stable (FAULTS.md
// §5). Generous: protocol frames settle in microseconds.
const quiescePause = 150 * time.Millisecond

// asyncOp is one in-flight OpAsyncInsert.
type asyncOp struct {
	node transport.NodeID
	val  int64
	err  error
	done chan struct{}
}

type runner struct {
	sc      *Scenario
	opt     RunOptions
	cluster *core.Cluster
	plan    *Plan
	ck      *Checker
	rec     *semantics.Recorder
	o       *obs.Obs

	out         io.Writer
	val         int64
	probes      int
	kept        []int64
	pending     []*asyncOp
	violations  []string
	probeTraces []ProbeTrace

	pumpStop chan struct{}
	pumpDone chan struct{}
}

// Run executes a scenario against a fresh in-process cluster, asserting
// invariants and semantics throughout (FAULTS.md §4). The returned error
// covers setup failures only; injected-fault findings land in
// Result.Violations.
func Run(sc *Scenario, opt RunOptions) (*Result, error) {
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	if opt.SettleTimeout <= 0 {
		opt.SettleTimeout = 30 * time.Second
	}
	if opt.AwaitTimeout <= 0 {
		opt.AwaitTimeout = 60 * time.Second
	}
	o := opt.Obs
	if o == nil {
		o = obs.Nop()
	}
	plan := NewPlan(sc.Seed, o)
	ck := NewChecker(o)
	ccfg := core.Config{
		Classifier:    Classifier(),
		Lambda:        sc.Lambda,
		Support:       sc.Support,
		UseReadGroups: true,
		LeasedReads:   opt.Leases,
		OnViewChange:  ck.OnViewChange,
	}
	if opt.Trace {
		// One shared sink collects every machine's spans — the in-process
		// stand-in for the collector's cross-machine merge. Spans a
		// crashed machine never recorded surface as assembly gaps.
		ccfg.TraceOps = true
		ccfg.Obs = o
	}
	var rec *flight.Recorder
	if opt.FlightDir != "" {
		// The flight plane also wants the cluster-wide merge: one shared
		// registry to sample and one audit trail that sees every machine's
		// ownership edges.
		ccfg.Obs = o
		trail := flight.NewAuditTrail(0)
		ccfg.Audit = trail
		interval := opt.FlightInterval
		if interval <= 0 {
			interval = 50 * time.Millisecond
		}
		sampler := flight.NewSampler(o.Reg(), flight.SamplerOptions{
			Interval: interval, Retention: 5 * time.Minute,
		})
		rec = flight.NewRecorder(flight.RecorderOptions{
			Dir: opt.FlightDir, Obs: o, Sampler: sampler, Audit: trail,
			Rules:  flight.DefaultRules(0, 0),
			Window: 5 * time.Minute,
		})
		sampler.Start()
		defer sampler.Stop()
	}
	cluster, err := core.NewCluster(ccfg, sc.N)
	if err != nil {
		return nil, fmt.Errorf("faults: cluster: %w", err)
	}
	ck.Bind(cluster)
	cluster.Net().SetInjector(plan)
	r := &runner{
		sc: sc, opt: opt, cluster: cluster, plan: plan, ck: ck,
		rec: semantics.NewRecorder(), o: o, out: opt.Out,
		pumpStop: make(chan struct{}), pumpDone: make(chan struct{}),
	}
	go r.pump()
	defer func() {
		close(r.pumpStop)
		<-r.pumpDone
		ck.Close()
		cluster.Shutdown()
	}()

	fmt.Fprintf(r.out, "scenario %s seed=%d n=%d lambda=%d rounds=%d\n",
		sc.Name, sc.Seed, sc.N, sc.Lambda, sc.Rounds)
	fmt.Fprintf(r.out, "support %s: %v\n", ProbeClass, sc.Support[ProbeClass])
	if opt.Leases {
		fmt.Fprintf(r.out, "leases: on\n")
	}
	if err := cluster.CheckInvariants(); err != nil {
		r.violate(fmt.Sprintf("baseline: %v", err))
	}
	_, outcome := r.probe(1)
	fmt.Fprintf(r.out, "warmup probe m=1: %s\n", outcome)
	time.Sleep(quiescePause)

	for i, st := range sc.Steps {
		r.exec(i+1, st)
	}

	// Late verdicts: the checker's persistent findings and the global
	// semantics check over every recorded operation interval.
	ckViol := ck.Violations()
	sort.Strings(ckViol)
	if len(ckViol) == 0 {
		fmt.Fprintf(r.out, "checker: ok\n")
	} else {
		for _, v := range ckViol {
			fmt.Fprintf(r.out, "checker: FAIL %s\n", v)
			r.violate(v)
		}
	}
	history := r.rec.History()
	semViol := semantics.Check(history)
	fmt.Fprintf(r.out, "semantics: %d records, %d violations\n", len(history), len(semViol))
	for _, v := range semViol {
		fmt.Fprintf(r.out, "semantics: FAIL %s\n", v.Error())
		r.violate("semantics: " + v.Error())
	}

	res := &Result{
		Scenario: sc.Name, Seed: sc.Seed,
		Probes: r.probes, Checks: ck.Checks(),
		Faults:  plan.Events(),
		Records: len(history), Violations: r.violations,
		ProbeTraces: r.probeTraces,
	}
	if rec != nil {
		// Force a scenario-end capture so even a run where no rule fired
		// leaves a postmortem bundle, then report everything in the dir.
		if _, err := rec.Trigger("scenario-end",
			fmt.Sprintf("scenario %s seed=%d completed", sc.Name, sc.Seed)); err != nil {
			r.violate(fmt.Sprintf("flight: scenario-end capture: %v", err))
		}
		if ms, err := flight.ListBundles(opt.FlightDir); err == nil {
			for _, m := range ms {
				res.Bundles = append(res.Bundles, m.ID)
			}
		}
		res.Violations = r.violations
	}
	sort.Slice(res.Faults, func(i, j int) bool {
		a, b := res.Faults[i], res.Faults[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Index < b.Index
	})
	if res.OK() {
		fmt.Fprintf(r.out, "verdict: OK\n")
	} else {
		fmt.Fprintf(r.out, "verdict: VIOLATIONS (%d)\n", len(res.Violations))
	}
	return res, nil
}

// pump keeps the hub's delay queue draining while traffic is quiet, so a
// held frame that nothing would otherwise follow still delivers (see
// simnet.Net.Tick).
func (r *runner) pump() {
	defer close(r.pumpDone)
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-r.pumpStop:
			return
		case <-t.C:
			r.cluster.Net().Tick()
		}
	}
}

func (r *runner) violate(v string) {
	r.violations = append(r.violations, v)
}

func (r *runner) nextVal() int64 {
	r.val++
	return r.val
}

func probeTuple(v int64) tuple.Tuple {
	return tuple.Make(tuple.String("probe"), tuple.Int(v))
}

func probeTemplate(v int64) tuple.Template {
	return tuple.NewTemplate(tuple.Eq(tuple.String("probe")), tuple.Eq(tuple.Int(v)))
}

// probe runs one asserted probe cycle from the given machine: insert,
// read (hit), read&del (hit), read (miss), every leg recorded for the
// final semantics check.
func (r *runner) probe(id transport.NodeID) (int64, string) {
	v := r.nextVal()
	r.probes++
	probeStart := time.Now()
	defer r.snapshotProbeTraces(id, probeStart)
	m := r.cluster.Machine(id)
	if m == nil {
		r.violate(fmt.Sprintf("probe m=%d: machine is down (scenario bug)", id))
		return v, "FAIL: machine down"
	}
	start := r.rec.Begin()
	t, err := m.Insert(probeTuple(v))
	r.rec.EndInsert(int(id), start, t, err)
	if err != nil {
		r.violate(fmt.Sprintf("probe m=%d v=%d: insert: %v", id, v, err))
		return v, "FAIL: insert"
	}
	tp := probeTemplate(v)
	start = r.rec.Begin()
	got, ok, err := m.Read(tp)
	r.rec.EndRead(int(id), start, got, ok && err == nil)
	if err != nil || !ok {
		r.violate(fmt.Sprintf("probe m=%d v=%d: read after insert missed (err=%v)", id, v, err))
		return v, "FAIL: read"
	}
	start = r.rec.Begin()
	got, ok, err = m.ReadDel(tp)
	r.rec.EndReadDel(int(id), start, got, ok && err == nil)
	if err != nil || !ok {
		r.violate(fmt.Sprintf("probe m=%d v=%d: read&del missed (err=%v)", id, v, err))
		return v, "FAIL: read&del"
	}
	start = r.rec.Begin()
	got, ok, err = m.Read(tp)
	r.rec.EndRead(int(id), start, got, ok && err == nil)
	if err != nil {
		r.violate(fmt.Sprintf("probe m=%d v=%d: read after read&del errored: %v", id, v, err))
		return v, "FAIL: re-read"
	}
	if ok {
		r.violate(fmt.Sprintf("probe m=%d v=%d: read returned the removed object", id, v))
		return v, "FAIL: dead object returned"
	}
	return v, "ok"
}

// snapshotProbeTraces assembles the traces of every probe leg the machine
// rooted since the probe began and appends them to the result — run
// immediately after each probe so no later fault can erase them.
func (r *runner) snapshotProbeTraces(id transport.NodeID, since time.Time) {
	if !r.opt.Trace {
		return
	}
	spans := r.o.Spans().Spans()
	for _, s := range spans {
		if s.Parent == 0 && s.Machine == uint64(id) && !s.Start.Before(since) {
			r.probeTraces = append(r.probeTraces, ProbeTrace{
				Probe: r.probes, Node: id, Op: s.Name,
				Trace: obs.Assemble(s.Trace, spans, cost.DefaultModel()),
			})
		}
	}
}

// keepVal stores v at slot, growing the kept table as needed.
func (r *runner) keepVal(slot int, v int64) {
	for len(r.kept) <= slot {
		r.kept = append(r.kept, 0)
	}
	r.kept[slot] = v
}

func (r *runner) exec(num int, st Step) {
	line := func(format string, args ...any) {
		fmt.Fprintf(r.out, "step %2d: %s\n", num, fmt.Sprintf(format, args...))
	}
	switch st.Op {
	case OpProbe:
		_, outcome := r.probe(st.Node)
		line("probe m=%d: %s", st.Node, outcome)
	case OpAsyncInsert:
		v := r.nextVal()
		r.keepVal(st.Slot, v)
		a := &asyncOp{node: st.Node, val: v, done: make(chan struct{})}
		r.pending = append(r.pending, a)
		m := r.cluster.Machine(st.Node)
		if m == nil {
			a.err = fmt.Errorf("machine %d down", st.Node)
			close(a.done)
		} else {
			go func() {
				defer close(a.done)
				start := r.rec.Begin()
				t, err := m.Insert(probeTuple(a.val))
				r.rec.EndInsert(int(a.node), start, t, err)
				a.err = err
			}()
		}
		line("async-insert m=%d slot=%d: launched", st.Node, st.Slot)
	case OpAwait:
		deadline := time.After(r.opt.AwaitTimeout)
		for _, a := range r.pending {
			select {
			case <-a.done:
				if a.err != nil {
					r.violate(fmt.Sprintf("async insert m=%d v=%d failed: %v", a.node, a.val, a.err))
					line("await m=%d: FAIL %v", a.node, a.err)
				} else {
					line("await m=%d: ok", a.node)
				}
			case <-deadline:
				r.violate(fmt.Sprintf(
					"async insert m=%d v=%d did not complete %s after its loss window closed (liveness)",
					a.node, a.val, r.opt.AwaitTimeout))
				line("await m=%d: STALLED", a.node)
			}
		}
		r.pending = nil
	case OpInsertKeep:
		v := r.nextVal()
		r.keepVal(st.Slot, v)
		outcome := "ok"
		if m := r.cluster.Machine(st.Node); m == nil {
			outcome = "FAIL: machine down"
			r.violate(fmt.Sprintf("insert-keep m=%d: machine down", st.Node))
		} else {
			start := r.rec.Begin()
			t, err := m.Insert(probeTuple(v))
			r.rec.EndInsert(int(st.Node), start, t, err)
			if err != nil {
				outcome = "FAIL: " + err.Error()
				r.violate(fmt.Sprintf("insert-keep m=%d v=%d: %v", st.Node, v, err))
			}
		}
		line("insert-keep m=%d slot=%d: %s", st.Node, st.Slot, outcome)
	case OpReadKeep, OpReadDelKeep:
		v := r.kept[st.Slot]
		verb := "read-keep"
		outcome := "ok"
		m := r.cluster.Machine(st.Node)
		if m == nil {
			outcome = "FAIL: machine down"
			r.violate(fmt.Sprintf("%s m=%d: machine down", verb, st.Node))
		} else if st.Op == OpReadKeep {
			start := r.rec.Begin()
			got, ok, err := m.Read(probeTemplate(v))
			r.rec.EndRead(int(st.Node), start, got, ok && err == nil)
			if err != nil || !ok {
				outcome = fmt.Sprintf("FAIL: kept value missing (err=%v)", err)
				r.violate(fmt.Sprintf("read-keep m=%d slot=%d v=%d: missing (err=%v)", st.Node, st.Slot, v, err))
			}
		} else {
			verb = "readdel-keep"
			start := r.rec.Begin()
			got, ok, err := m.ReadDel(probeTemplate(v))
			r.rec.EndReadDel(int(st.Node), start, got, ok && err == nil)
			if err != nil || !ok {
				outcome = fmt.Sprintf("FAIL: kept value missing (err=%v)", err)
				r.violate(fmt.Sprintf("readdel-keep m=%d slot=%d v=%d: missing (err=%v)", st.Node, st.Slot, v, err))
			}
		}
		line("%s m=%d slot=%d: %s", verb, st.Node, st.Slot, outcome)
	case OpCrash:
		r.cluster.Crash(st.Node)
		r.o.Emit("fault-injected", obs.KV("kind", string(KindCrash)), obs.KV("node", st.Node))
		line("crash m=%d: ok", st.Node)
	case OpRestart:
		outcome := "ok"
		if err := r.cluster.Restart(st.Node); err != nil {
			outcome = "FAIL: " + err.Error()
			r.violate(fmt.Sprintf("restart m=%d: %v", st.Node, err))
		}
		r.o.Emit("fault-injected", obs.KV("kind", string(KindRestart)), obs.KV("node", st.Node))
		line("restart m=%d: %s", st.Node, outcome)
	case OpFlap:
		r.cluster.Net().Flap(st.Node)
		r.o.Emit("fault-injected", obs.KV("kind", string(KindFlap)), obs.KV("node", st.Node))
		line("flap m=%d: ok", st.Node)
	case OpPartition:
		r.ck.Pause()
		for _, a := range st.A {
			for _, b := range st.B {
				r.cluster.Net().Cut(a, b)
				r.cluster.Net().Cut(b, a)
			}
		}
		r.o.Emit("fault-injected", obs.KV("kind", string(KindPartition)),
			obs.KV("sideA", st.A), obs.KV("sideB", st.B))
		line("partition %v | %v: ok", st.A, st.B)
	case OpHeal:
		for _, a := range st.A {
			for _, b := range st.B {
				r.cluster.Net().Uncut(a, b)
				r.cluster.Net().Uncut(b, a)
			}
		}
		outcome := r.settle()
		r.ck.Resume()
		line("heal %v | %v: %s", st.A, st.B, outcome)
	case OpCutOneWay:
		r.cluster.Net().Cut(st.From, st.To)
		r.o.Emit("fault-injected", obs.KV("kind", string(KindOneWay)),
			obs.KV("from", st.From), obs.KV("to", st.To))
		line("cut-oneway %d->%d: ok", st.From, st.To)
	case OpHealOneWay:
		r.cluster.Net().Uncut(st.From, st.To)
		line("heal-oneway %d->%d: ok", st.From, st.To)
	case OpRules:
		time.Sleep(quiescePause)
		r.plan.SetRules(st.Rules...)
		descs := make([]string, len(st.Rules))
		for i, rule := range st.Rules {
			descs[i] = rule.String()
		}
		line("rules: [%s]", strings.Join(descs, "; "))
	case OpClearRules:
		r.plan.ClearRules()
		time.Sleep(quiescePause)
		line("clear-rules: ok")
	case OpSettle:
		line("settle: %s", r.settle())
	default:
		r.violate(fmt.Sprintf("step %d: unknown op %d", num, st.Op))
		line("unknown op %d", st.Op)
	}
}

// settle polls the full invariant until it holds or the settle timeout
// expires (which is a violation: recovery is supposed to converge).
func (r *runner) settle() string {
	deadline := time.Now().Add(r.opt.SettleTimeout)
	var err error
	for {
		if err = r.cluster.CheckInvariants(); err == nil {
			return "ok"
		}
		if time.Now().After(deadline) {
			r.violate(fmt.Sprintf("settle: invariants did not converge in %s: %v", r.opt.SettleTimeout, err))
			return "FAIL: " + err.Error()
		}
		time.Sleep(5 * time.Millisecond)
	}
}
