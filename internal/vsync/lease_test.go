package vsync

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"paso/internal/cost"
	"paso/internal/simnet"
	"paso/internal/transport"
)

// leaseHandler extends testHandler with the LeaseReader fast path: LeaseRead
// echoes the payload prefixed with "leased:" plus the group's delivered
// count, so tests can tell a leased answer from an ordered one and see the
// state the server answered from.
type leaseHandler struct {
	*testHandler
}

var _ LeaseReader = (*leaseHandler)(nil)

func (h *leaseHandler) LeaseRead(group string, payload []byte) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return []byte(fmt.Sprintf("leased:%s:%d", payload, len(h.state[group]))), false
}

// leaseHarness is the lease-test counterpart of harness: same simnet, but
// every node's handler implements LeaseReader.
type leaseHarness struct {
	t   *testing.T
	net *simnet.Net
	nds map[transport.NodeID]*Node
	hs  map[transport.NodeID]*leaseHandler
	mu  sync.Mutex
}

func newLeaseHarness(t *testing.T, ids ...transport.NodeID) *leaseHarness {
	t.Helper()
	h := &leaseHarness{
		t:   t,
		net: simnet.New(cost.DefaultModel()),
		nds: make(map[transport.NodeID]*Node),
		hs:  make(map[transport.NodeID]*leaseHandler),
	}
	for _, id := range ids {
		ep, err := h.net.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		lh := &leaseHandler{newTestHandler()}
		h.nds[id] = NewNode(ep, lh)
		h.hs[id] = lh
	}
	t.Cleanup(func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		for _, nd := range h.nds {
			nd.Close()
		}
	})
	return h
}

func (h *leaseHarness) crash(id transport.NodeID) {
	h.t.Helper()
	h.net.Crash(id)
	h.mu.Lock()
	h.nds[id].Close()
	delete(h.nds, id)
	delete(h.hs, id)
	h.mu.Unlock()
}

// waitEpochAgreement polls until every node's view epoch is equal and its
// live view spans n nodes, then returns the agreed epoch.
func (h *leaseHarness) waitEpochAgreement(n int) uint64 {
	h.t.Helper()
	var epoch uint64
	waitFor(h.t, fmt.Sprintf("view epoch agreement across %d nodes", n), func() bool {
		first := true
		for _, nd := range h.nds {
			ids, e := nd.LiveView()
			if len(ids) != n {
				return false
			}
			if first {
				epoch, first = e, false
			} else if e != epoch {
				return false
			}
		}
		return true
	})
	return epoch
}

func TestLeaseReadServed(t *testing.T) {
	h := newLeaseHarness(t, 1, 2)
	if err := h.nds[1].Join("wg/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.nds[1].Gcast("wg/a", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	epoch := h.waitEpochAgreement(2)

	res, err := h.nds[2].LeaseRead("wg/a", 1, []byte("q"), time.Second)
	if err != nil {
		t.Fatalf("LeaseRead: %v", err)
	}
	if got, want := string(res.Payload), "leased:q:1"; got != want {
		t.Errorf("payload = %q, want %q", got, want)
	}
	if res.Epoch != epoch {
		t.Errorf("epoch = %016x, want %016x", res.Epoch, epoch)
	}
	if res.GroupSize != 1 {
		t.Errorf("group size = %d, want 1", res.GroupSize)
	}
	if res.Seq == 0 {
		t.Error("served reply did not stamp the delivered sequence")
	}
}

// TestLeaseReadRefusedWithoutLeaseReader drives a lease request at a node
// whose handler does not implement LeaseReader: the server must fence
// rather than answer, keeping the fast path invisible to such handlers.
func TestLeaseReadRefusedWithoutLeaseReader(t *testing.T) {
	h := newHarness(t, 1, 2)
	if err := h.nds[1].Join("g"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node 2 sees node 1 live", func() bool {
		ids, _ := h.nds[2].LiveView()
		return len(ids) == 2
	})
	_, err := h.nds[2].LeaseRead("g", 1, []byte("q"), time.Second)
	if !errors.Is(err, ErrLeaseFenced) {
		t.Fatalf("err = %v, want ErrLeaseFenced", err)
	}
}

func TestLeaseReadRefusedNonMember(t *testing.T) {
	h := newLeaseHarness(t, 1, 2)
	h.waitEpochAgreement(2)
	// Node 1 never joined wg/a: it must fence, not answer from empty state.
	_, err := h.nds[2].LeaseRead("wg/a", 1, []byte("q"), time.Second)
	if !errors.Is(err, ErrLeaseFenced) {
		t.Fatalf("err = %v, want ErrLeaseFenced", err)
	}
}

// TestLeaseReadEpochMismatchFenced gives client and server permanently
// different views (node 2's detector has declared node 3 dead, node 1's has
// not) and asserts the server refuses the mismatched epoch.
func TestLeaseReadEpochMismatchFenced(t *testing.T) {
	h := newLeaseHarness(t, 1, 2, 3)
	if err := h.nds[1].Join("wg/a"); err != nil {
		t.Fatal(err)
	}
	h.waitEpochAgreement(3)
	// Cut 3→2: node 2 observes Down(3) and moves to a two-node view while
	// node 1 still sees all three.
	h.net.Cut(3, 2)
	waitFor(t, "node 2 drops node 3 from its view", func() bool {
		ids, _ := h.nds[2].LiveView()
		return len(ids) == 2
	})
	_, err := h.nds[2].LeaseRead("wg/a", 1, []byte("q"), time.Second)
	if !errors.Is(err, ErrLeaseFenced) {
		t.Fatalf("err = %v, want ErrLeaseFenced", err)
	}
}

// TestLeaseReadFencedByViewChange is the fallback-retry unit test from the
// lease's fencing contract: the epoch advances between issuing the request
// and resolving it (the request is stuck on a cut link when an unrelated
// member crashes), and the pending lease must fail with ErrLeaseFenced — not
// hang and not return data under the stale epoch.
func TestLeaseReadFencedByViewChange(t *testing.T) {
	h := newLeaseHarness(t, 1, 2, 3)
	if err := h.nds[1].Join("wg/a"); err != nil {
		t.Fatal(err)
	}
	h.waitEpochAgreement(3)
	before := h.nds[2].ViewEpoch()

	// The request from 2 can never reach 1, so the lease stays pending
	// until something resolves it. (Node 1 observing Down(2) is harmless —
	// the client side owns the pending entry.)
	h.net.Cut(2, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := h.nds[2].LeaseRead("wg/a", 1, []byte("q"), 30*time.Second)
		errc <- err
	}()
	// Let the loop register the pending lease before the fence arrives.
	time.Sleep(50 * time.Millisecond)
	h.crash(3)

	select {
	case err := <-errc:
		if !errors.Is(err, ErrLeaseFenced) {
			t.Fatalf("err = %v, want ErrLeaseFenced", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending leased read not fenced by the view change")
	}
	waitFor(t, "node 2 publishes a new epoch", func() bool {
		return h.nds[2].ViewEpoch() != before
	})
}

func TestLeaseReadTimeout(t *testing.T) {
	h := newLeaseHarness(t, 1, 2)
	if err := h.nds[1].Join("wg/a"); err != nil {
		t.Fatal(err)
	}
	h.waitEpochAgreement(2)
	// Drop requests 2→1 without touching node 2's view: its epoch stays
	// stable, so the only way out is the timer.
	h.net.Cut(2, 1)
	start := time.Now()
	_, err := h.nds[2].LeaseRead("wg/a", 1, []byte("q"), 250*time.Millisecond)
	if !errors.Is(err, ErrLeaseTimeout) {
		t.Fatalf("err = %v, want ErrLeaseTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("timed out after %v, want ≥ the 250ms deadline", elapsed)
	}
}

// TestViewEpochAgreesAcrossNodes pins the epoch's defining property: it is
// a pure function of the observed live set, so nodes with equal views carry
// equal epochs, and a membership edge moves every survivor to the same new
// epoch.
func TestViewEpochAgreesAcrossNodes(t *testing.T) {
	h := newLeaseHarness(t, 1, 2, 3)
	before := h.waitEpochAgreement(3)
	if before == 0 {
		t.Fatal("published epoch is zero")
	}
	h.crash(3)
	after := h.waitEpochAgreement(2)
	if after == before {
		t.Fatal("epoch did not change on a membership edge")
	}
}
