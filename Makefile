GO ?= go

.PHONY: build test race vet bench doccheck chaos trace-race wire-fuzz sweep sweep-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages must stay race-clean.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./

# Doc comments on vsync/simnet/faults are normative (FAULTS.md, PROTOCOL.md).
doccheck:
	$(GO) test -run TestExportedDocs ./internal/lint/

# The distributed-tracing plane under the race detector: span propagation
# through batching/view changes/failover plus the pasoctl trace path.
trace-race:
	$(GO) test -race -run 'Trace|Span|Assemble|Audit' -count=1 \
		./internal/vsync/ ./internal/obs/ ./internal/core/ ./internal/faults/ ./cmd/pasoctl/

# Coverage-guided fuzzing of the wire codec (30s total budget): the frame
# decoder must never panic on arbitrary bytes, and every accepted frame
# must round-trip bijectively (PROTOCOL.md, "Wire format").
wire-fuzz:
	$(GO) test -fuzz FuzzWireRoundTrip -fuzztime 20s -run '^$$' ./internal/vsync/
	$(GO) test -fuzz FuzzSnapshotRoundTrip -fuzztime 10s -run '^$$' ./internal/vsync/

# Full saturation sweep on a real loopback-TCP cluster: an open-loop rate
# ladder with coordinated-omission-safe latencies and per-stage
# attribution, appended to BENCH_paso.json (EXPERIMENTS.md, "Latency
# sweep").
sweep:
	$(GO) run ./cmd/paso-loadgen -sweep 500,1000,2000,4000,8000 -rung 2s \
		-out BENCH_paso.json -label "make sweep"

# CI-sized sweep smoke: a two-rung mini-sweep on the simulated LAN under
# the race detector. Fails when the lowest rung cannot achieve 80% of its
# offered rate — the load plane itself must never be the bottleneck at
# trivial rates.
sweep-smoke:
	$(GO) run -race ./cmd/paso-loadgen -transport simnet -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 -out sweep-smoke.json

# Deterministic fault-injection smoke under the race detector; failures
# replay bit-identically from the same seed (README, "Chaos testing").
chaos:
	$(GO) run -race ./cmd/paso-chaos -scenario rolling-crash -seed 42
	$(GO) run -race ./cmd/paso-chaos -scenario flapping-partition -seed 7

check: build vet test race doccheck

clean:
	rm -rf bin/
	$(GO) clean ./...
