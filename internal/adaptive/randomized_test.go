package adaptive

import "testing"

func TestRandomizedValidation(t *testing.T) {
	if _, err := NewRandomized(0, 1); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestRandomizedThresholdInRange(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p, err := NewRandomized(16, seed)
		if err != nil {
			t.Fatal(err)
		}
		if p.Threshold() < 1 || p.Threshold() > 16 {
			t.Fatalf("seed %d: threshold %d out of (0,16]", seed, p.Threshold())
		}
	}
}

func TestRandomizedThresholdDistributionSkewsHigh(t *testing.T) {
	// The e/(e−1) density puts more mass near K than near 0: the mean of
	// T/K is 1/(e−1) ≈ 0.58... compute: E[T] = K·(e−2)/(e−1) ≈ 0.418K?
	// Rather than pin the constant, check the empirical mean sits in a
	// sane interior band and the distribution is not degenerate.
	const k = 100
	sum, lo, hi := 0, k, 0
	for seed := int64(0); seed < 400; seed++ {
		p, _ := NewRandomized(k, seed)
		v := p.Threshold()
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mean := float64(sum) / 400
	if mean < 0.25*k || mean > 0.75*k {
		t.Errorf("mean threshold %.1f outside sane band", mean)
	}
	if hi-lo < k/4 {
		t.Errorf("threshold distribution degenerate: lo=%d hi=%d", lo, hi)
	}
}

func TestRandomizedJoinsAndLeaves(t *testing.T) {
	p, _ := NewRandomized(8, 3)
	joined := false
	for i := 0; i < 8 && !joined; i++ {
		if p.LocalRead(false, 2) == Join {
			joined = true
		}
	}
	if !joined {
		t.Fatal("never joined within K reads")
	}
	// After joining the counter is at K; K updates drive a leave and a
	// threshold redraw.
	var left bool
	for i := 0; i < 8; i++ {
		if p.Update(true) == Leave {
			left = true
			break
		}
	}
	if !left {
		t.Fatal("never left after K updates")
	}
	if p.Counter() != 0 {
		t.Fatalf("counter %d after leave", p.Counter())
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestRandomizedCounterBounds(t *testing.T) {
	p, _ := NewRandomized(5, 7)
	member := false
	for i := 0; i < 500; i++ {
		var d Decision
		if i%3 == 0 {
			d = p.Update(member)
		} else {
			d = p.LocalRead(member, 1+i%3)
		}
		if d == Join {
			member = true
		}
		if d == Leave {
			member = false
		}
		if p.Counter() < 0 || p.Counter() > 5 {
			t.Fatalf("counter %d out of [0,K]", p.Counter())
		}
	}
}
