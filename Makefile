GO ?= go

.PHONY: build test race vet bench doccheck chaos chaos-leases flight-smoke trace-race wire-fuzz sweep sweep-smoke sweep-check sweep-classes sweep-reads check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages must stay race-clean.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./

# Doc comments on vsync/simnet/faults are normative (FAULTS.md, PROTOCOL.md).
doccheck:
	$(GO) test -run TestExportedDocs ./internal/lint/

# The distributed-tracing plane under the race detector: span propagation
# through batching/view changes/failover plus the pasoctl trace path.
trace-race:
	$(GO) test -race -run 'Trace|Span|Assemble|Audit' -count=1 \
		./internal/vsync/ ./internal/obs/ ./internal/core/ ./internal/faults/ ./cmd/pasoctl/

# Coverage-guided fuzzing of the wire codec (30s total budget): the frame
# decoder must never panic on arbitrary bytes, and every accepted frame
# must round-trip bijectively (PROTOCOL.md, "Wire format").
wire-fuzz:
	$(GO) test -fuzz FuzzWireRoundTrip -fuzztime 20s -run '^$$' ./internal/vsync/
	$(GO) test -fuzz FuzzSnapshotRoundTrip -fuzztime 10s -run '^$$' ./internal/vsync/

# Full saturation sweep on a real loopback-TCP cluster: an open-loop rate
# ladder with coordinated-omission-safe latencies and per-stage
# attribution, appended to BENCH_paso.json (EXPERIMENTS.md, "Latency
# sweep"). The ladder tops out at 4× the PR 6 knee (32k/s) so the curve
# keeps showing the knee, not the ladder's end.
sweep:
	$(GO) run ./cmd/paso-loadgen -sweep 2000,4000,8000,16000,32000,64000,128000 \
		-rung 2s -out BENCH_paso.json -label "make sweep"

# CI-sized sweep smoke: a two-rung mini-sweep on the simulated LAN under
# the race detector. Fails when the lowest rung cannot achieve 80% of its
# offered rate — the load plane itself must never be the bottleneck at
# trivial rates.
sweep-smoke:
	$(GO) run -race ./cmd/paso-loadgen -transport simnet -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 -out sweep-smoke.json

# Sweep regression gate: run the smoke sweep fresh (no race detector, so
# latencies are honest) into a scratch copy of the trajectory, then diff
# the candidate against the recorded "sweep-smoke seed" point. Exits
# nonzero when the knee drops or any shared rung's p99 blows past the
# slack — the -compare verdict CI gates on. Smoke rungs measure ~1–2ms
# p99s that scheduler noise on shared runners can inflate 10×, so the
# gate combines a 4× slack with a 50ms absolute noise floor: it catches
# knee collapse and order-of-magnitude latency regressions, not jitter.
sweep-check:
	cp BENCH_paso.json /tmp/paso-sweep-check.json
	$(GO) run ./cmd/paso-loadgen -transport simnet -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 \
		-out /tmp/paso-sweep-check.json -label "sweep-smoke candidate"
	$(GO) run ./cmd/paso-loadgen -compare-slack 4 -compare-p99-floor 50 \
		-out /tmp/paso-sweep-check.json \
		-compare "sweep-smoke seed" "sweep-smoke candidate"

# Multi-class scaling gate (EXPERIMENTS.md, E19): two identical simnet
# mini-sweeps into a scratch trajectory — single-class baseline, then 8
# sharded classes with placed coordinators — and a -compare verdict. The
# gate fails when sharding collapses the aggregate knee below the
# single-class knee or blows a shared rung's p99 past the slack; the same
# 4×-slack / 50ms-floor calibration as sweep-check keeps runner jitter
# from flaking it. At these modest rates both modes must sustain every
# rung, so the knees match and any real per-class regression surfaces.
sweep-classes:
	rm -f /tmp/paso-sweep-classes.json
	$(GO) run ./cmd/paso-loadgen -transport simnet -classes 1 -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 \
		-out /tmp/paso-sweep-classes.json -label "classes=1 baseline"
	$(GO) run ./cmd/paso-loadgen -transport simnet -classes 8 -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 \
		-out /tmp/paso-sweep-classes.json -label "classes=8 candidate"
	$(GO) run ./cmd/paso-loadgen -compare-slack 4 -compare-p99-floor 50 \
		-out /tmp/paso-sweep-classes.json \
		-compare "classes=1 baseline" "classes=8 candidate"

# Leased-read gate (EXPERIMENTS.md, E21): two read-heavy simnet
# mini-sweeps into a scratch trajectory — leases off, then the epoch-fenced
# fast path on — and a -compare verdict. The gate fails when leases
# collapse the read-heavy knee below the ordered baseline or blow a shared
# rung's p99 past the slack (same 4×-slack / 50ms-floor calibration as
# sweep-check). Both rungs must also individually sustain 80% of offered.
sweep-reads:
	rm -f /tmp/paso-sweep-reads.json
	$(GO) run ./cmd/paso-loadgen -transport simnet -read-heavy -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 \
		-out /tmp/paso-sweep-reads.json -label "read-heavy leases=off baseline"
	$(GO) run ./cmd/paso-loadgen -transport simnet -read-heavy -leases -sweep 200,400 \
		-rung 500ms -sweep-min-achieved 0.8 \
		-out /tmp/paso-sweep-reads.json -label "read-heavy leases=on candidate"
	$(GO) run ./cmd/paso-loadgen -compare-slack 4 -compare-p99-floor 50 \
		-out /tmp/paso-sweep-reads.json \
		-compare "read-heavy leases=off baseline" "read-heavy leases=on candidate"

# Deterministic fault-injection smoke under the race detector; failures
# replay bit-identically from the same seed (README, "Chaos testing").
chaos:
	$(GO) run -race ./cmd/paso-chaos -scenario rolling-crash -seed 42
	$(GO) run -race ./cmd/paso-chaos -scenario flapping-partition -seed 7

# The same seeded rolling-crash schedule with the leased-read fast path
# enabled: the lease must be invisible to the λ−k+1 invariant and the
# A1–A3 semantics checks (EXPERIMENTS.md, E21).
chaos-leases:
	$(GO) run -race ./cmd/paso-chaos -scenario rolling-crash -seed 42 -leases

# Flight-recorder smoke: the slow-coordinator scenario with the recorder
# armed must leave at least one diagnostic bundle whose manifest carries a
# non-empty ownership timeline and a fingerprint (README, "Flight
# recorder"). The jq-free assertion keeps it dependency-light.
flight-smoke:
	rm -rf /tmp/paso-flight-smoke
	$(GO) run ./cmd/paso-chaos -scenario slow-coordinator -seed 42 -flight /tmp/paso-flight-smoke
	@ls /tmp/paso-flight-smoke | grep -q '^b' || { echo "flight-smoke: no bundle captured" >&2; exit 1; }
	@grep -q '"ownership"' /tmp/paso-flight-smoke/*/manifest.json || { echo "flight-smoke: bundle has empty ownership timeline" >&2; exit 1; }
	@grep -q '"fingerprint"' /tmp/paso-flight-smoke/*/manifest.json || { echo "flight-smoke: bundle manifest has no fingerprint" >&2; exit 1; }
	@echo "flight-smoke: OK ($$(ls /tmp/paso-flight-smoke | wc -l) bundle(s))"

check: build vet test race doccheck

clean:
	rm -rf bin/
	$(GO) clean ./...
