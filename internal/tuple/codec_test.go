package tuple

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeTupleRoundTrip(t *testing.T) {
	tests := []Tuple{
		Make(),
		Make(Int(1)),
		Make(String("hello"), Int(-5), Float(2.25), Bool(true), Bytes([]byte{0, 255})),
		New(ID{Origin: 9, Seq: 100}, String("id-carrying")),
	}
	for _, tu := range tests {
		b := EncodeTuple(tu)
		got, err := DecodeTuple(b)
		if err != nil {
			t.Fatalf("decode %v: %v", tu, err)
		}
		if !got.Equal(tu) || got.ID() != tu.ID() {
			t.Errorf("round trip: got %v, want %v", got, tu)
		}
	}
}

func TestEncodeDecodeTemplateRoundTrip(t *testing.T) {
	tps := []Template{
		NewTemplate(),
		NewTemplate(Any(KindInt)),
		NewTemplate(Eq(String("x")), Range(Int(1), Int(5)), Prefix("ab"), Ne(Bool(false))),
	}
	for _, tp := range tps {
		b := EncodeTemplate(tp)
		got, err := DecodeTemplate(b)
		if err != nil {
			t.Fatalf("decode %v: %v", tp, err)
		}
		if got.Arity() != tp.Arity() {
			t.Fatalf("arity: got %d want %d", got.Arity(), tp.Arity())
		}
		for i := 0; i < tp.Arity(); i++ {
			a, b := got.Matcher(i), tp.Matcher(i)
			if a.Op != b.Op || a.Kind != b.Kind || !a.A.Equal(b.A) && (a.A.IsValid() || b.A.IsValid()) {
				t.Errorf("matcher %d: got %+v want %+v", i, a, b)
			}
		}
	}
}

func TestDecodeTupleCorrupt(t *testing.T) {
	good := EncodeTuple(Make(String("x"), Int(1)))
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeTuple(good[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	bad := append([]byte{}, good...)
	bad[16+2] = 99 // corrupt first field kind tag (after id+arity)
	if _, err := DecodeTuple(bad); err == nil {
		t.Error("bad kind tag decoded without error")
	}
}

func TestDecodeTemplateCorrupt(t *testing.T) {
	good := EncodeTemplate(NewTemplate(Eq(String("x"))))
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeTemplate(good[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(rt randomTuple) bool {
		b := EncodeTuple(rt.T)
		got, err := DecodeTuple(b)
		return err == nil && got.Equal(rt.T) && got.ID() == rt.T.ID()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTemplateCodecPreservesMatching(t *testing.T) {
	// A decoded MatchTuple template must still match its source tuple.
	f := func(rt randomTuple) bool {
		tp := MatchTuple(rt.T)
		got, err := DecodeTemplate(EncodeTemplate(tp))
		return err == nil && got.Matches(rt.T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeTracksSizeEstimate(t *testing.T) {
	// Size() is an estimate used for cost accounting; it should be within a
	// small constant factor of the true encoding.
	tu := Make(String("workload"), Int(42), Bytes(make([]byte, 64)))
	enc := len(EncodeTuple(tu))
	est := tu.Size()
	if est < enc/2 || est > enc*2 {
		t.Errorf("size estimate %d far from encoded size %d", est, enc)
	}
}
